"""MPI world construction and the per-rank user API.

:class:`MpiWorld` places ranks on (node, gpu) slots of a simulated
cluster and runs rank *programs* — generator coroutines receiving a
:class:`RankContext` — to completion on the simulated clock:

>>> world = MpiWorld(cluster, placements=[(0, 0), (0, 1)])
>>> def rank0(mpi):
...     yield mpi.send(buf, dtype, 1, dest=1, tag=0)
>>> def rank1(mpi):
...     yield mpi.recv(buf, dtype, 1, source=0, tag=0)
>>> elapsed = world.run({0: rank0, 1: rank1})
"""

from __future__ import annotations

import time as _time
from typing import Callable, Optional, Sequence

from repro.datatype.ddt import Datatype
from repro.faults.plan import FaultPlan
from repro.hw.memory import Buffer
from repro.hw.node import Cluster
from repro.mpi.bml import Bml
from repro.mpi.comm import Communicator
from repro.mpi.config import MpiConfig
from repro.mpi.message import ANY_SOURCE, ANY_TAG
from repro.mpi.pml import (
    eager_fast_ok,
    eager_irecv_fast,
    eager_isend_fast,
    irecv_coro,
    isend_coro,
    rts_handler,
)
from repro.mpi.proc import MpiProcess
from repro.mpi.requests import Request
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import WorldStats, classify_resource
from repro.sanitize import runtime as _san
from repro.sim.core import Future, Process, all_of, any_of

__all__ = ["MpiWorld", "RankContext"]


class _ProcTable:
    """Lazily-materialized rank -> :class:`MpiProcess` table.

    World construction at scale (4k+ ranks) should not pay for per-rank
    state the run never touches, so the world builds processes on first
    index.  The table looks like the eager ``list`` it replaces:
    ``world.procs[r]``, iteration, ``len`` and unpacking all work —
    iterating materializes every rank (tests do this on small worlds),
    while the observability paths use :meth:`materialized` to visit only
    ranks that actually exist.

    Construction must be side-effect free on the simulator (it is:
    ``MpiProcess.__init__`` is pure bookkeeping), so a rank materializing
    mid-run cannot perturb event ordering.
    """

    __slots__ = ("_world", "_slots")

    def __init__(self, world: "MpiWorld") -> None:
        self._world = world
        self._slots: list[Optional[MpiProcess]] = [None] * len(
            world.placements
        )

    def __len__(self) -> int:
        return len(self._slots)

    def __getitem__(self, rank: int) -> MpiProcess:
        proc = self._slots[rank]
        if proc is None:
            if rank < 0:
                rank += len(self._slots)
            proc = self._slots[rank] = self._world._make_proc(rank)
        return proc

    def __iter__(self):
        for rank in range(len(self._slots)):
            yield self[rank]

    def materialized(self):
        """Only the ranks built so far (stats/reset visit just these)."""
        return (p for p in self._slots if p is not None)


class MpiWorld:
    """A set of ranks over a cluster, sharing one BML and clock."""

    def __init__(
        self,
        cluster: Cluster,
        placements: Sequence[tuple[int, Optional[int]]],
        config: Optional[MpiConfig] = None,
        tuner=None,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config or MpiConfig()
        #: rank -> (node index, gpu index or None); the node-locality
        #: queries below (and the hierarchical collectives built on
        #: them) read this, so the world keeps its placement map
        self.placements: tuple[tuple[int, Optional[int]], ...] = tuple(
            (n, g) for n, g in placements
        )
        self._node_ranks: dict[int, list[int]] = {}
        for rank, (node_i, _gpu_i) in enumerate(self.placements):
            self._node_ranks.setdefault(node_i, []).append(rank)
        #: scratch tables collectives use to exchange per-call metadata
        #: out-of-band (keyed by (op, seq); see repro.mpi.collectives)
        self._coll_rendezvous: dict = {}
        self.bml = Bml()
        #: world-wide metrics store; ranks get ``r<rank>.``-scoped views
        self.metrics = MetricsRegistry()
        if self.config.sanitize.any_enabled:
            from repro import sanitize

            # an install that is already live (a test's sanitize.enabled()
            # context, or the session-level env install) wins: re-enabling
            # here would override its raise/record mode and report
            if not sanitize.is_enabled():
                sanitize.enable(
                    self.config.sanitize,
                    metrics=self.metrics.scoped("sanitize."),
                )
        #: one shared fault injector (None without a configured plan):
        #: all ranks draw from the same seeded RNG in event order
        self.faults: Optional[FaultPlan] = None
        if self.config.faults is not None:
            self.faults = FaultPlan(
                self.config.faults, metrics=self.metrics.scoped("faults.")
            )
        #: one shared autotuner (None with autotune="off"): every rank
        #: decides from the same frozen decision-table snapshot, so
        #: world-consistent choices (tuned direct alltoall) hold by
        #: construction.  An explicit ``tuner=`` wins over the config
        #: (harnesses inject freshly trained tables without a tempfile)
        self.tuner = tuner
        if self.tuner is None and self.config.autotune != "off":
            from repro.tune.tuner import Autotuner

            self.tuner = Autotuner.from_config(self.config)
        #: lazily-built per-rank process table — shared immutable state
        #: (config, placements, fault plan, metrics root) lives on the
        #: world; each rank's mutable state materializes on first use
        self.procs = _ProcTable(self)
        self._barrier_waiters: list[Future] = []
        self._barrier_arrived = 0
        self._barrier_snap: Optional[dict] = None
        #: verifier bookkeeping (see repro.sanitize.verify): requests
        #: tracked for the finalize audit (populated only while the
        #: verifier is installed), weakrefs to every RMA window built
        #: over this world, barrier wait tokens, and freed context ids
        self._verify_requests: list[Request] = []
        self._barrier_toks: list[int] = []
        self._rma_windows: list = []
        self._freed_comms: set[int] = set()
        #: simulator-counter baselines for the current stats window — the
        #: shared clock may predate (or outlive) this world, so ``stats()``
        #: reports deltas from here rather than the simulator's lifetime
        #: totals
        self._events_base = self.sim.events_processed
        self._timers_cancelled_base = self.sim.timers_cancelled
        #: wall-clock and simulated seconds accumulated by ``run`` calls
        #: in the current stats window
        self._run_wall_s = 0.0
        self._sim_elapsed_s = 0.0
        #: MPI_COMM_WORLD
        self.comm_world = Communicator(self, comm_id=0)

    def _make_proc(self, rank: int) -> MpiProcess:
        """Materialize one rank's process (called by :class:`_ProcTable`)."""
        node_i, gpu_i = self.placements[rank]
        node = self.cluster.nodes[node_i]
        gpu = node.gpus[gpu_i] if gpu_i is not None else None
        proc = MpiProcess(
            rank, node, gpu, self.config,
            metrics=self.metrics.scoped(f"r{rank}."),
            faults=self.faults,
            tuner=self.tuner,
        )
        proc.register_handler("pml.rts", rts_handler(self, proc))
        return proc

    @property
    def size(self) -> int:
        return len(self.procs)

    def context(self, rank: int) -> "RankContext":
        """The :class:`RankContext` API handle for one rank."""
        return RankContext(self, self.procs[rank])

    # -- node locality ---------------------------------------------------------
    def node_index(self, rank: int) -> int:
        """The cluster node index ``rank`` is placed on."""
        return self.placements[rank][0]

    @property
    def num_nodes(self) -> int:
        """How many distinct cluster nodes hold at least one rank."""
        return len(self._node_ranks)

    def ranks_on_node(self, node_i: int) -> list[int]:
        """All ranks placed on node ``node_i``, in rank order."""
        return list(self._node_ranks.get(node_i, ()))

    def node_leader(self, rank: int) -> int:
        """The lowest rank on ``rank``'s node (the hierarchical leader)."""
        return self._node_ranks[self.node_index(rank)][0]

    # -- running programs ------------------------------------------------------
    def run(
        self,
        programs: "dict[int, Callable] | Sequence[Callable]",
        limit: float = 1e6,
    ) -> float:
        """Run one generator program per rank; returns elapsed sim time.

        ``programs`` maps rank -> program; a sequence assigns by index.
        Each program is called with its rank's :class:`RankContext`.
        """
        if not isinstance(programs, dict):
            programs = dict(enumerate(programs))
        t0 = self.sim.now
        wall0 = _time.perf_counter()
        procs: list[Process] = []
        for rank, fn in programs.items():
            mpi = self.context(rank)
            procs.append(self.sim.spawn(fn(mpi), label=f"rank{rank}"))
        done = all_of(self.sim, procs, label="world.run")
        self.sim.run_until_complete(done, limit=limit)
        elapsed = self.sim.now - t0
        self._run_wall_s += _time.perf_counter() - wall0
        self._sim_elapsed_s += elapsed
        return elapsed

    def finalize(self) -> list:
        """``MPI_Finalize``-style teardown audit (verifier-gated).

        With the verifier installed (``REPRO_SANITIZE=verify``/``all``),
        audits the world for leaked resources — never-completed requests,
        unmatched posted receives, undrained unexpected messages, open
        re-sequencer gaps, unfreed RMA windows, DevCache entries pinned
        past their communicator — recording each finding as a
        ``verify.*`` violation (raising on the first one in raise mode)
        and bumping ``verify.audit.*`` world metrics.  Returns the
        findings; a no-op returning ``[]`` when the verifier is off.
        """
        if _san.VERIFY is None:
            return []
        from repro.sanitize.verify.audit import audit_world

        return audit_world(self, _san.VERIFY)

    def _comm_freed(self, comm_id: int) -> None:
        """Record a freed context id (the pin audit checks against it)."""
        self._freed_comms.add(comm_id)

    # -- observability ---------------------------------------------------------
    def stats(self) -> WorldStats:
        """One uniform stats object for everything the world has done.

        Aggregates every rank's transfer log, the GPU datatype engines'
        counters (including the device caches), and — when the cluster
        was built with ``trace=True`` — per-resource busy times plus the
        pack/wire overlap the paper's pipelining argument rests on.
        """
        ws = WorldStats()
        for proc in self.procs.materialized():
            for t in proc.transfer_log:
                ws.transfers.append(t)
                key = t.protocol or "unknown"
                ws.by_protocol[key] = ws.by_protocol.get(key, 0) + 1
                if t.mode:
                    mkey = f"{key}.{t.mode}"
                    ws.by_mode[mkey] = ws.by_mode.get(mkey, 0) + 1
            if proc._engine is not None:
                ws.engine = ws.engine.merged(proc._engine.stats())
        tracer = self.cluster.tracer
        if tracer:
            groups: dict[str, list[str]] = {}
            for name in tracer.resources():
                ws.resource_busy_s[name] = tracer.busy_time(name)
                groups.setdefault(classify_resource(name), []).append(name)
            ws.pack_busy_s = tracer.busy_time_group(groups.get("pack", []))
            ws.wire_busy_s = tracer.busy_time_group(groups.get("wire", []))
            ws.pcie_busy_s = tracer.busy_time_group(groups.get("pcie", []))
            ws.pack_wire_overlap_s = tracer.overlap_time_group(
                groups.get("pack", []), groups.get("wire", [])
            )
        ws.metrics = self.metrics.snapshot()
        if not ws.transfers:
            # transfer_log off (scale runs): rebuild the protocol mix from
            # the per-rank ``r<k>.protocol.*`` counters so dashboards and
            # benchmark gates keep working without the per-transfer records
            for k, v in ws.metrics.items():
                if not v:  # reset leaves zeroed counters behind
                    continue
                rank, dot, rest = k.partition(".")
                if not (dot and rank.startswith("r")):
                    continue
                if not rest.startswith("protocol."):
                    continue
                name = rest[len("protocol."):]
                if "." in name:
                    ws.by_mode[name] = ws.by_mode.get(name, 0) + v
                else:
                    ws.by_protocol[name] = ws.by_protocol.get(name, 0) + v
        sim = self.sim
        ws.events_processed = sim.events_processed - self._events_base
        ws.timers_cancelled = (
            sim.timers_cancelled - self._timers_cancelled_base
        )
        ws.peak_queue_depth = sim.peak_queue_depth
        ws.run_wall_s = self._run_wall_s
        ws.sim_elapsed_s = self._sim_elapsed_s
        return ws

    def reset_stats(self) -> None:
        """Forget everything observed so far (e.g. after warmup rounds)."""
        for proc in self.procs.materialized():
            proc.transfer_log.clear()
            if proc._engine is not None:
                proc._engine.reset_counters()
        self.metrics.reset()
        tracer = self.cluster.tracer
        if tracer:
            tracer.clear()
        self._events_base = self.sim.events_processed
        self._timers_cancelled_base = self.sim.timers_cancelled
        self.sim.reset_peak_depth()
        self._run_wall_s = 0.0
        self._sim_elapsed_s = 0.0

    # -- naive barrier (no wire cost; for test scaffolding) ----------------------
    def _barrier(self, _rank: int) -> Future:
        fut = Future(self.sim, label="barrier")
        self._barrier_waiters.append(fut)
        self._barrier_arrived += 1
        if _san.VERIFY is not None:
            # the waiter Future has __slots__, so tokens ride a parallel
            # list; the release below ends every registered wait at once
            self._barrier_toks.append(
                _san.VERIFY.wait_begin("barrier", _rank, self.sim, world=self)
            )
        if _san.RACE is not None:
            # a barrier is an all-to-all happens-before edge: every rank's
            # pre-barrier work precedes every rank's post-barrier work.
            # Accumulate the join of all arrivals' clocks and pre-stamp it
            # on every waiter, so the release below hands each resumed rank
            # the merged view rather than only the last arrival's clock.
            self._barrier_snap = _san.RACE.merge(
                self._barrier_snap, _san.RACE.snapshot()
            )
        if self._barrier_arrived == self.size:
            waiters, self._barrier_waiters = self._barrier_waiters, []
            self._barrier_arrived = 0
            if _san.VERIFY is not None:
                for tok in self._barrier_toks:
                    _san.VERIFY.wait_end(tok)
                self._barrier_toks.clear()
            if _san.RACE is not None:
                snap = self._barrier_snap
                self._barrier_snap = None
                for w in waiters:
                    w._san_snap = _san.RACE.merge(w._san_snap, snap)
            for w in waiters:
                w.resolve(None)
        return fut


class RankContext:
    """What a rank program sees: buffers, datatypes, send/recv."""

    def __init__(self, world: MpiWorld, proc: MpiProcess) -> None:
        self.world = world
        self.proc = proc
        self.rank = proc.rank
        self.size = world.size
        self.node = proc.node
        self.gpu = proc.gpu
        self.cuda = proc.ctx
        self.sim = proc.sim
        self.config = proc.config

    # -- node locality ---------------------------------------------------------
    @property
    def node_index(self) -> int:
        """Cluster node index this rank is placed on."""
        return self.world.node_index(self.rank)

    @property
    def node_ranks(self) -> list[int]:
        """All ranks sharing this rank's node, in rank order."""
        return self.world.ranks_on_node(self.node_index)

    @property
    def node_leader(self) -> int:
        """Lowest rank on this node (hierarchical-collective leader)."""
        return self.world.node_leader(self.rank)

    @property
    def is_node_leader(self) -> bool:
        """True when this rank is its node's leader."""
        return self.node_leader == self.rank

    # -- memory helpers ------------------------------------------------------
    def device_alloc(self, nbytes: int, label: str = "") -> Buffer:
        """Allocate device memory on this rank's GPU."""
        if self.cuda is None:
            raise RuntimeError(f"rank {self.rank} has no GPU")
        return self.cuda.malloc(nbytes, label=label)

    def host_alloc(self, nbytes: int, label: str = "") -> Buffer:
        """Allocate host memory on this rank's node."""
        return self.node.host_memory.alloc(nbytes, label=label)

    # -- point-to-point --------------------------------------------------------
    def isend(
        self,
        buf: Buffer,
        datatype: Datatype,
        count: int,
        dest: int,
        tag: int = 0,
        comm: "Communicator | None" = None,
    ) -> Request:
        """Nonblocking send; returns a waitable :class:`Request`."""
        comm_id = comm.comm_id if comm is not None else 0
        nbytes = datatype.size * count
        if nbytes <= self.config.eager_limit and eager_fast_ok(
            self.proc, buf, datatype, count
        ):
            fut = eager_isend_fast(
                self.world, self.proc, buf, datatype, count, dest, tag,
                comm_id=comm_id,
            )
            req = Request(fut, "send", nbytes)
            if _san.VERIFY is not None:
                _san.VERIFY.track_request(
                    self.world, req, self.rank, "send", dest, tag, comm_id,
                    nbytes,
                )
            return req
        labels = self.proc._isend_labels
        label = labels.get(dest)
        if label is None:
            label = labels[dest] = f"isend r{self.rank}->r{dest}"
        proc = self.sim.spawn(
            isend_coro(
                self.world, self.proc, buf, datatype, count, dest, tag,
                comm_id=comm_id,
            ),
            label=label,
            eager_start=True,
        )
        req = Request(proc, "send", nbytes)
        if _san.VERIFY is not None:
            _san.VERIFY.track_request(
                self.world, req, self.rank, "send", dest, tag, comm_id, nbytes
            )
        return req

    def irecv(
        self,
        buf: Buffer,
        datatype: Datatype,
        count: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: "Communicator | None" = None,
    ) -> Request:
        """Nonblocking receive; resolves with a :class:`Status`."""
        comm_id = comm.comm_id if comm is not None else 0
        nbytes = datatype.size * count
        if eager_fast_ok(self.proc, buf, datatype, count):
            fut = eager_irecv_fast(
                self.world, self.proc, buf, datatype, count, source, tag,
                comm_id=comm_id,
            )
            req = Request(fut, "recv", nbytes)
            if _san.VERIFY is not None:
                _san.VERIFY.track_request(
                    self.world, req, self.rank, "recv", source, tag, comm_id,
                    nbytes,
                )
            return req
        labels = self.proc._irecv_labels
        label = labels.get(source)
        if label is None:
            label = labels[source] = f"irecv r{self.rank}<-r{source}"
        proc = self.sim.spawn(
            irecv_coro(
                self.world, self.proc, buf, datatype, count, source, tag,
                comm_id=comm_id,
            ),
            label=label,
            eager_start=True,
        )
        req = Request(proc, "recv", nbytes)
        if _san.VERIFY is not None:
            _san.VERIFY.track_request(
                self.world, req, self.rank, "recv", source, tag, comm_id,
                nbytes,
            )
        return req

    # blocking forms are pure aliases (``yield mpi.send(...)`` waits via the
    # returned Request) — class-level bindings skip a delegation frame on
    # the hottest user-facing calls
    send = isend

    recv = irecv

    @property
    def comm_world(self) -> Communicator:
        return self.world.comm_world

    def sendrecv(
        self,
        sendbuf: Buffer,
        send_dt: Datatype,
        send_count: int,
        dest: int,
        recvbuf: Buffer,
        recv_dt: Datatype,
        recv_count: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Future:
        """MPI_Sendrecv: both directions in flight, deadlock-free.

        Resolves with ``[send_result, recv_status]``.
        """
        sreq = self.isend(sendbuf, send_dt, send_count, dest, sendtag)
        rreq = self.irecv(recvbuf, recv_dt, recv_count, source, recvtag)
        return all_of(self.sim, [sreq.future, rreq.future])

    def barrier(self) -> Future:
        """Synchronize all ranks (cost-free scaffolding barrier)."""
        return self.world._barrier(self.rank)

    def wait_all(self, *requests: Request) -> Future:
        """Future resolving when every given request completes."""
        return all_of(self.sim, [r.future for r in requests])

    def wait_any(self, *requests: Request) -> Future:
        """Resolves with ``(index, value)`` of the first completed request."""
        return any_of(self.sim, [r.future for r in requests])

    @property
    def now(self) -> float:
        return self.sim.now
