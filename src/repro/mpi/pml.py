"""PML: point-to-point management layer.

"At the top level, the PML realizes the MPI matching, fragments, and
reassembles the message data ... Different protocols based on the message
size (short, eager, and rendezvous) and network properties are available,
and the PML is designed to pick the best combination" (Section 4).

Send path: eager for small messages (data rides the RTS Active Message);
rendezvous otherwise — the RTS advertises the sender's buffer placement,
contiguity and, when CUDA IPC applies, an IPC handle (of the user buffer
for contiguous sends, of the device fragment ring otherwise).  The
receiver matches, chooses the protocol (receiver-driven GET handshake),
answers with a CTS, and both sides run the chosen pipeline from
:mod:`repro.mpi.protocols`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.cuda.ipc import IpcMemHandle
from repro.datatype.ddt import Datatype
from repro.hw.memory import Buffer
from repro.mpi.matching import PostedRecv
from repro.mpi.message import Envelope
from repro.mpi.requests import Status
from repro.mpi.protocols import RECEIVERS, SENDERS, choose_protocol
from repro.mpi.protocols.common import (
    CpuSideJob,
    SideInfo,
    TransferState,
    describe_side,
)
from repro.obs.stats import TransferStats
from repro.sim.core import Future
from repro.sim.resources import Mailbox

if TYPE_CHECKING:
    from repro.mpi.proc import MpiProcess
    from repro.mpi.world import MpiWorld

__all__ = ["isend_coro", "irecv_coro"]

_tids = itertools.count()


def _times(sig, count: int):
    """A datatype signature repeated ``count`` times.

    Single-run signatures scale in place; multi-run ones concatenate
    (seams stay un-coalesced — the prefix walk below tolerates adjacent
    runs of the same name).
    """
    if count == 1:
        return sig
    return tuple((n, c * count) for n, c in sig) if len(sig) == 1 else sig * count


def _signature_check(send_sig, recv_sig) -> None:
    """MPI demands the send signature be a prefix of the receive's.

    Both sides pass their *full* signature (datatype signature scaled by
    the call's count) — the standard's rule is about the whole message,
    so a packed ``contiguous(c * n, BYTE)``-style wire type sent with
    count 1 lands legally in ``c`` elements of the original type.
    """
    flat_s = [(n, c) for n, c in send_sig]
    flat_r = [(n, c) for n, c in recv_sig]
    si = ri = 0
    s_rem = r_rem = 0
    s_name = r_name = None
    while True:
        if s_rem == 0:
            if si == len(flat_s):
                return  # send exhausted: OK
            s_name, s_rem = flat_s[si]
            si += 1
        if r_rem == 0:
            if ri == len(flat_r):
                raise ValueError("type signature mismatch: receive too short")
            r_name, r_rem = flat_r[ri]
            ri += 1
        if s_name != r_name:
            raise ValueError(
                f"type signature mismatch: {s_name} sent into {r_name}"
            )
        take = min(s_rem, r_rem)
        s_rem -= take
        r_rem -= take


# ---------------------------------------------------------------------------
# eager protocol
# ---------------------------------------------------------------------------


def _eager_pack_coro(
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    gpudirect: bool = False,
):
    """Produce the message's bytes for an eager send.

    Host buffers CPU-pack into a bounce array; device buffers GPU-pack
    into a zero-copy host bounce — or, with GPUDirect RDMA, into a
    *device* bounce that the NIC reads directly (no host transit; the
    PCIe D2H leg disappears, which is why GPUDirect wins for small
    messages).
    """
    total = dt.size * count
    if total == 0:
        # zero-byte send: the envelope still travels, the engines don't
        return np.empty(0, dtype=np.uint8)
    if buf.is_host:
        job = CpuSideJob(proc, dt, count, buf, "pack")
        stage = np.empty(total, dtype=np.uint8)
        yield job.process_range(0, total, stage)
        return stage
    job = proc.engine.pack_job(dt, count, buf, proc.config.engine)
    if gpudirect:
        dstage = proc.acquire_staging("device", max(total, 256))
        yield from job.process_all(dstage[:total])
        data = dstage.bytes[:total].copy()
        proc.release_staging("device", dstage)
        return data
    # pack via the GPU engine into a zero-copy host bounce buffer
    hstage = proc.acquire_staging("host", max(total, 256), zero_copy_map=True)
    yield from job.process_all(hstage[:total])
    data = hstage.bytes[:total].copy()
    proc.release_staging("host", hstage, zero_copy_map=True)
    return data


def _eager_unpack_coro(
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    data: np.ndarray,
    gpudirect: bool = False,
):
    # a receive may be posted larger than the message actually sent:
    # unpack only the prefix that arrived, leave trailing elements alone
    total = min(dt.size * count, len(data))
    if total == 0:
        return 0
    if buf.is_host:
        job = CpuSideJob(proc, dt, count, buf, "unpack")
        yield job.process_range(0, total, data)
        return total
    job = proc.engine.unpack_job(dt, count, buf, proc.config.engine)
    # a prefix fragment (not process_all, which demands the full posted
    # count's bytes and would reject — or overrun — a short message)
    frag = job.range_fragment(0, 0, total)
    if gpudirect:
        # the NIC deposited the message straight into device memory
        dstage = proc.acquire_staging("device", max(total, 256))
        dstage.bytes[:total] = data[:total]
        yield from job.process_fragment(frag, dstage[:total])
        proc.release_staging("device", dstage)
        return total
    hstage = proc.acquire_staging("host", max(total, 256), zero_copy_map=True)
    hstage.bytes[:total] = data[:total]
    yield from job.process_fragment(frag, hstage[:total])
    proc.release_staging("host", hstage, zero_copy_map=True)
    return total


# ---------------------------------------------------------------------------
# send / recv coroutines
# ---------------------------------------------------------------------------


def isend_coro(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    dest: int,
    tag: int,
    comm_id: int = 0,
):
    """Sender-side PML coroutine: eager or rendezvous per DESIGN/PROTOCOLS."""
    dt.commit()
    total = dt.size * count
    dst_proc = world.procs[dest]
    btl = world.bml.btl_for(proc, dst_proc)
    env = Envelope(
        source=proc.rank, dest=dest, tag=tag, comm_id=comm_id,
        pair_seq=proc.next_send_seq(dest, comm_id),
    )
    cfg = proc.config

    if total <= cfg.eager_limit:
        gdr = (
            buf.is_device
            and getattr(btl, "supports_gpudirect", False)
            and dst_proc.gpu is not None
        )
        t0 = proc.sim.now
        data = yield from _eager_pack_coro(proc, buf, dt, count, gpudirect=gdr)
        header = {
            "eager": True,
            "total": total,
            "signature": _times(dt.signature, count),
            "gpudirect": gdr,
        }
        # the NIC reads device memory directly under GPUDirect (degraded
        # rate beyond the ~30 KB crossover, at wire speed below it)
        yield btl.am_send(
            "pml.rts", header, payload=data, envelope=env, gpudirect=gdr
        )
        proc.record_transfer(TransferStats(
            tid=f"{proc.rank}.eager.{next(_tids)}", role="send", peer=dest,
            protocol="eager", mode="gpudirect" if gdr else "",
            total_bytes=total, frag_bytes=total, fragments=1,
            max_in_flight=1, start_s=t0, end_s=proc.sim.now,
        ))
        return total

    tid = f"{proc.rank}.{next(_tids)}"
    s_info = describe_side(proc, buf, dt, count)
    s_info.frag_bytes = cfg.frag_bytes
    s_info.ring_segments = cfg.pipeline_depth

    state = TransferState(
        proc=proc,
        btl=btl,
        tid=tid,
        dt=dt,
        count=count,
        buf=buf,
        total=total,
        frag_bytes=cfg.frag_bytes,
        depth=cfg.pipeline_depth,
        role="s",
    )
    state.stats.peer = dest
    # RDMA resources are advertised in the RTS (Fig 4: the connection
    # request carries the memory handle and the local datatype's shape)
    ring_key = None
    if s_info.loc == "device" and btl.supports_cuda_ipc:
        if s_info.contiguous:
            s_info.handle = IpcMemHandle.get(buf)
        else:
            nbytes = cfg.frag_bytes * cfg.pipeline_depth
            state.ring = proc.acquire_staging("device", nbytes)
            ring_key = nbytes
            s_info.handle = IpcMemHandle.get(state.ring)

    cts_box = Mailbox(proc.sim, name=f"{tid}.cts")
    proc.register_handler(f"x{tid}.s.cts", lambda pkt, _b: cts_box.put(pkt))
    state.bind_inbox("done")
    try:
        btl.am_send(
            "pml.rts",
            {
                "eager": False,
                "tid": tid,
                "total": total,
                "side": s_info,
                "signature": _times(dt.signature, count),
            },
            envelope=env,
        )
        cts_pkt = yield cts_box.get()
        protocol = cts_pkt.header["protocol"]
        state.stats.protocol = protocol
        r_info: SideInfo = cts_pkt.header["side"]
        result = yield from SENDERS[protocol](state, s_info, r_info, cts_pkt.header)
        state.stats.end_s = proc.sim.now
        if state.stats.fragments == 0:
            state.stats.fragments = 1
        proc.record_transfer(state.stats)
    finally:
        state.close()  # cancel any outstanding retransmit watchdogs
        proc.unregister_handler(f"x{tid}.s.cts")
        state.unbind_all("done")
        # swallow duplicated/delayed ACKs that surface after completion
        state.seal()
        if state.ring is not None:
            proc.release_staging("device", state.ring)
    return result


def irecv_coro(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    source: int,
    tag: int,
    comm_id: int = 0,
):
    """Receiver-side PML coroutine: match, choose protocol, run it."""
    dt.commit()
    on_match = Future(proc.sim, label=f"r{proc.rank}.match")
    proc.matching.post(
        PostedRecv(source=source, tag=tag, comm_id=comm_id, on_match=on_match)
    )
    env, header, payload, sender_rank = yield on_match
    _signature_check(header["signature"], _times(dt.signature, count))

    if header["eager"]:
        t0 = proc.sim.now
        gdr = header.get("gpudirect", False)
        got = yield from _eager_unpack_coro(
            proc, buf, dt, count, payload, gpudirect=gdr,
        )
        proc.record_transfer(TransferStats(
            tid=f"{proc.rank}.eager.{next(_tids)}", role="recv",
            peer=env.source, protocol="eager",
            mode="gpudirect" if gdr else "",
            total_bytes=got, frag_bytes=got, fragments=1,
            max_in_flight=1, start_s=t0, end_s=proc.sim.now,
        ))
        return Status(source=env.source, tag=env.tag, count_bytes=got)

    tid = header["tid"]
    s_info: SideInfo = header["side"]
    src_proc = world.procs[sender_rank]
    btl_back = world.bml.btl_for(proc, src_proc)
    r_info = describe_side(proc, buf, dt, count)
    protocol = choose_protocol(s_info, r_info, btl_back)

    state = TransferState(
        proc=proc,
        btl=btl_back,
        tid=tid,
        dt=dt,
        count=count,
        buf=buf,
        total=min(s_info.total, dt.size * count),
        # the sender dictates the fragmentation (its ring is sized for it)
        frag_bytes=s_info.frag_bytes,
        depth=s_info.ring_segments,
        role="r",
    )
    state.stats.peer = env.source
    state.stats.protocol = protocol
    state.bind_inbox("frag")
    state.bind_inbox("done")
    try:
        if protocol == "ipc_rdma":
            # the ipc_rdma receiver sends its own CTS (after mapping)
            result = yield from RECEIVERS[protocol](state, s_info, r_info)
        else:
            btl_back.am_send(
                state.peer("cts"), {"protocol": protocol, "side": r_info}
            )
            result = yield from RECEIVERS[protocol](state, s_info, r_info)
        state.stats.end_s = proc.sim.now
        if state.stats.fragments == 0:
            state.stats.fragments = 1
        proc.record_transfer(state.stats)
    finally:
        state.unbind_all("frag", "done")
        # answer retransmissions of fragments whose final ACK was lost
        state.seal()
    return Status(source=env.source, tag=env.tag, count_bytes=result)


def rts_handler(world: "MpiWorld", proc: "MpiProcess"):
    """The PML's match handler, registered once per rank."""

    def handle(pkt, _btl) -> None:
        env = pkt.envelope
        arrival = (env, pkt.header, pkt.payload, env.source)
        proc.matching.arrive(env, arrival)

    return handle
