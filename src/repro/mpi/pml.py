"""PML: point-to-point management layer.

"At the top level, the PML realizes the MPI matching, fragments, and
reassembles the message data ... Different protocols based on the message
size (short, eager, and rendezvous) and network properties are available,
and the PML is designed to pick the best combination" (Section 4).

Send path: eager for small messages (data rides the RTS Active Message);
rendezvous otherwise — the RTS advertises the sender's buffer placement,
contiguity and, when CUDA IPC applies, an IPC handle (of the user buffer
for contiguous sends, of the device fragment ring otherwise).  The
receiver matches, chooses the protocol (receiver-driven GET handshake),
answers with a CTS, and both sides run the chosen pipeline from
:mod:`repro.mpi.protocols`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.cuda.ipc import IpcMemHandle
from repro.datatype.canonical import canonicalize
from repro.datatype.ddt import Datatype
from repro.hw.memory import Buffer
from repro.mpi.matching import PostedRecv
from repro.mpi.message import Envelope
from repro.mpi.requests import Status
from repro.mpi.protocols import RECEIVERS, SENDERS, choose_protocol
from repro.mpi.protocols.common import (
    CpuSideJob,
    SideInfo,
    TransferState,
    describe_side,
)
from repro.obs.stats import TransferStats
from repro.sanitize import runtime as _san
from repro.sim.core import Future
from repro.sim.resources import Mailbox

if TYPE_CHECKING:
    from repro.mpi.proc import MpiProcess
    from repro.mpi.world import MpiWorld

__all__ = ["isend_coro", "irecv_coro"]

_tids = itertools.count()


def _times(sig, count: int):
    """A datatype signature repeated ``count`` times.

    Single-run signatures scale in place; multi-run ones concatenate
    (seams stay un-coalesced — the prefix walk below tolerates adjacent
    runs of the same name).
    """
    if count == 1:
        return sig
    return tuple((n, c * count) for n, c in sig) if len(sig) == 1 else sig * count


def _signature_check(send_sig, recv_sig) -> None:
    """MPI demands the send signature be a prefix of the receive's.

    Both sides pass their *full* signature (datatype signature scaled by
    the call's count) — the standard's rule is about the whole message,
    so a packed ``contiguous(c * n, BYTE)``-style wire type sent with
    count 1 lands legally in ``c`` elements of the original type.
    """
    if send_sig == recv_sig:
        return  # identical tuples — the overwhelmingly common case
    flat_s = [(n, c) for n, c in send_sig]
    flat_r = [(n, c) for n, c in recv_sig]
    si = ri = 0
    s_rem = r_rem = 0
    s_name = r_name = None
    while True:
        if s_rem == 0:
            if si == len(flat_s):
                return  # send exhausted: OK
            s_name, s_rem = flat_s[si]
            si += 1
        if r_rem == 0:
            if ri == len(flat_r):
                raise ValueError("type signature mismatch: receive too short")
            r_name, r_rem = flat_r[ri]
            ri += 1
        if s_name != r_name:
            raise ValueError(
                f"type signature mismatch: {s_name} sent into {r_name}"
            )
        take = min(s_rem, r_rem)
        s_rem -= take
        r_rem -= take


# ---------------------------------------------------------------------------
# eager protocol
# ---------------------------------------------------------------------------


def _eager_pack_coro(
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    gpudirect: bool = False,
):
    """Produce the message's bytes for an eager send.

    Host buffers CPU-pack into a bounce array; device buffers GPU-pack
    into a zero-copy host bounce — or, with GPUDirect RDMA, into a
    *device* bounce that the NIC reads directly (no host transit; the
    PCIe D2H leg disappears, which is why GPUDirect wins for small
    messages).
    """
    total = dt.size * count
    if total == 0:
        # zero-byte send: the envelope still travels, the engines don't
        return np.empty(0, dtype=np.uint8)
    if buf.is_host:
        if (
            dt.is_contiguous
            and (count == 1 or dt.extent == dt.size)
            and _san.MEM is None
            and _san.RACE is None
        ):
            # contiguous host fast path: same memcpy-engine charge as
            # CpuSideJob's contiguous branch, minus the convertor and
            # closure machinery (sanitized runs keep the checked path).
            # count > 1 needs extent == size too — a resized contiguous
            # type strides elements apart, which only the convertor walks.
            stage = np.empty(total, dtype=np.uint8)
            src = buf.bytes
            fut = proc.node.cpu_memcpy_engine.transfer(total, label="cpu-pack")
            fut.add_callback(lambda _f: stage.__setitem__(slice(0, total), src[:total]))
            yield fut
            return stage
        job = CpuSideJob(proc, dt, count, buf, "pack")
        stage = np.empty(total, dtype=np.uint8)
        yield job.process_range(0, total, stage)
        return stage
    job = proc.engine.pack_job(dt, count, buf, proc.config.engine)
    if gpudirect:
        dstage = proc.acquire_staging("device", max(total, 256))
        yield from job.process_all(dstage[:total])
        data = dstage.bytes[:total].copy()
        proc.release_staging("device", dstage)
        return data
    # pack via the GPU engine into a zero-copy host bounce buffer
    hstage = proc.acquire_staging("host", max(total, 256), zero_copy_map=True)
    yield from job.process_all(hstage[:total])
    data = hstage.bytes[:total].copy()
    proc.release_staging("host", hstage, zero_copy_map=True)
    return data


def _eager_unpack_coro(
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    data: np.ndarray,
    gpudirect: bool = False,
):
    # a receive may be posted larger than the message actually sent:
    # unpack only the prefix that arrived, leave trailing elements alone
    total = min(dt.size * count, len(data))
    if total == 0:
        return 0
    if buf.is_host:
        if (
            dt.is_contiguous
            and (count == 1 or dt.extent == dt.size)
            and _san.MEM is None
            and _san.RACE is None
        ):
            # contiguous host fast path — mirror of _eager_pack_coro's
            dst = buf.bytes
            fut = proc.node.cpu_memcpy_engine.transfer(total, label="cpu-unpack")
            fut.add_callback(lambda _f: dst.__setitem__(slice(0, total), data[:total]))
            yield fut
            return total
        job = CpuSideJob(proc, dt, count, buf, "unpack")
        yield job.process_range(0, total, data)
        return total
    job = proc.engine.unpack_job(dt, count, buf, proc.config.engine)
    # a prefix fragment (not process_all, which demands the full posted
    # count's bytes and would reject — or overrun — a short message)
    frag = job.range_fragment(0, 0, total)
    if gpudirect:
        # the NIC deposited the message straight into device memory
        dstage = proc.acquire_staging("device", max(total, 256))
        dstage.bytes[:total] = data[:total]
        yield from job.process_fragment(frag, dstage[:total])
        proc.release_staging("device", dstage)
        return total
    hstage = proc.acquire_staging("host", max(total, 256), zero_copy_map=True)
    hstage.bytes[:total] = data[:total]
    yield from job.process_fragment(frag, hstage[:total])
    proc.release_staging("host", hstage, zero_copy_map=True)
    return total


# ---------------------------------------------------------------------------
# send / recv coroutines
# ---------------------------------------------------------------------------


def isend_coro(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    dest: int,
    tag: int,
    comm_id: int = 0,
):
    """Sender-side PML coroutine: eager or rendezvous per DESIGN/PROTOCOLS."""
    dt.commit()
    total = dt.size * count
    dst_proc = world.procs[dest]
    btl = world.bml.btl_for(proc, dst_proc)
    env = Envelope(
        source=proc.rank, dest=dest, tag=tag, comm_id=comm_id,
        pair_seq=proc.next_send_seq(dest, comm_id),
    )
    cfg = proc.config

    if total <= cfg.eager_limit:
        gdr = (
            buf.is_device
            and getattr(btl, "supports_gpudirect", False)
            and dst_proc.gpu is not None
        )
        t0 = proc.sim.now
        data = yield from _eager_pack_coro(proc, buf, dt, count, gpudirect=gdr)
        header = {
            "eager": True,
            "total": total,
            "signature": _times(dt.signature, count),
            "gpudirect": gdr,
        }
        # the NIC reads device memory directly under GPUDirect (degraded
        # rate beyond the ~30 KB crossover, at wire speed below it)
        # owned: the freshly packed stage and literal header are handed
        # over, so the BTL skips its defensive copies
        yield btl.am_send(
            "pml.rts", header, payload=data, envelope=env, gpudirect=gdr,
            owned=True,
        )
        mode = "gpudirect" if gdr else ""
        if proc.log_transfers:
            proc.record_transfer(TransferStats(
                tid=f"{proc.rank}.eager.{next(_tids)}", role="send", peer=dest,
                protocol="eager", mode=mode,
                total_bytes=total, frag_bytes=total, fragments=1,
                max_in_flight=1, start_s=t0, end_s=proc.sim.now,
            ))
        else:
            proc.count_transfer("send", "eager", mode, total)
        if proc.tuner is not None and total > 0:
            # informational sample: "eager" is never a tuned choice, but
            # its cost sits beside the rendezvous ones in the table so a
            # human reading the dump sees the crossover
            form = canonicalize(dt, count)
            key = proc.tuner.p2p_key(
                form, total, proc.node is dst_proc.node,
                "device" if buf.is_device else "host",
            )
            proc.tuner.observe_eager(key, proc.sim.now - t0, total)
        return total

    tid = f"{proc.rank}.{next(_tids)}"
    s_info = describe_side(proc, buf, dt, count)
    # fragmentation defaults come from the static config; an autotuner in
    # "on" mode overrides them from its frozen decision table and may also
    # advertise a protocol preference in the RTS (docs/AUTOTUNER.md)
    frag_bytes = cfg.frag_bytes
    depth = cfg.pipeline_depth
    tune_key = None
    if proc.tuner is not None:
        form = canonicalize(dt, count)
        tune_key = proc.tuner.p2p_key(
            form, total, proc.node is dst_proc.node, s_info.loc
        )
        tuned = proc.tuner.decide_send(tune_key)
        if tuned is not None:
            frag_bytes = tuned.frag_bytes
            depth = tuned.depth
            s_info.preferred_protocol = tuned.protocol
    s_info.frag_bytes = frag_bytes
    s_info.ring_segments = depth

    state = TransferState(
        proc=proc,
        btl=btl,
        tid=tid,
        dt=dt,
        count=count,
        buf=buf,
        total=total,
        frag_bytes=frag_bytes,
        depth=depth,
        role="s",
    )
    state.stats.peer = dest
    # RDMA resources are advertised in the RTS (Fig 4: the connection
    # request carries the memory handle and the local datatype's shape)
    ring_key = None
    if s_info.loc == "device" and btl.supports_cuda_ipc:
        if s_info.contiguous:
            s_info.handle = IpcMemHandle.get(buf)
        else:
            nbytes = frag_bytes * depth
            state.ring = proc.acquire_staging("device", nbytes)
            ring_key = nbytes
            s_info.handle = IpcMemHandle.get(state.ring)

    cts_box = Mailbox(proc.sim, name=f"{tid}.cts")
    proc.register_handler(f"x{tid}.s.cts", lambda pkt, _b: cts_box.put(pkt))
    state.bind_inbox("done")
    _ver = _san.VERIFY
    _vtok = None
    try:
        btl.am_send(
            "pml.rts",
            {
                "eager": False,
                "tid": tid,
                "total": total,
                "side": s_info,
                "signature": _times(dt.signature, count),
            },
            envelope=env,
        )
        if _ver is not None:
            # the classic rendezvous hang: RTS out, no matching receive
            # ever posts, the CTS never comes — register the wait so a
            # drained event loop can name this exact send
            _vtok = _ver.wait_begin(
                "cts", proc.rank, proc.sim, peer=dest, tag=tag,
                comm_id=comm_id, detail=f"rendezvous send {total}B",
                world=world,
            )
        cts_pkt = yield cts_box.get()
        if _ver is not None:
            _ver.wait_end(_vtok)
        protocol = cts_pkt.header["protocol"]
        state.stats.protocol = protocol
        r_info: SideInfo = cts_pkt.header["side"]
        result = yield from SENDERS[protocol](state, s_info, r_info, cts_pkt.header)
        state.stats.end_s = proc.sim.now
        if state.stats.fragments == 0:
            state.stats.fragments = 1
        proc.record_transfer(state.stats)
        if tune_key is not None:
            # record the choice that actually ran (the receiver may have
            # overridden the preference) against the observed elapsed time
            proc.tuner.observe_send(
                tune_key, frag_bytes, depth, protocol,
                state.stats.end_s - state.stats.start_s, total,
            )
    finally:
        if _ver is not None:
            _ver.wait_end(_vtok)  # idempotent (exception paths)
        state.close()  # cancel any outstanding retransmit watchdogs
        proc.unregister_handler(f"x{tid}.s.cts")
        state.unbind_all("done")
        # swallow duplicated/delayed ACKs that surface after completion
        state.seal()
        if state.ring is not None:
            proc.release_staging("device", state.ring)
    return result


def irecv_coro(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    source: int,
    tag: int,
    comm_id: int = 0,
):
    """Receiver-side PML coroutine: match, choose protocol, run it."""
    dt.commit()
    on_match = Future(proc.sim, label=proc._match_label)
    proc.matching.post(
        PostedRecv(source=source, tag=tag, comm_id=comm_id, on_match=on_match)
    )
    _ver = _san.VERIFY
    _vtok = None
    if _ver is not None:
        # the wait spans post -> completion: an unmatched post *and* a
        # protocol stalled mid-transfer both surface as this receive
        _vtok = _ver.wait_begin(
            "recv", proc.rank, proc.sim,
            peer=None if source < 0 else source,
            tag=None if tag < 0 else tag,
            comm_id=comm_id, world=world,
        )
    try:
        env, header, payload, sender_rank = yield on_match
        status = yield from _matched_recv_coro(
            world, proc, buf, dt, count, env, header, payload, sender_rank
        )
    finally:
        if _ver is not None:
            _ver.wait_end(_vtok)
    return status


def _matched_recv_coro(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    env,
    header,
    payload,
    sender_rank: int,
):
    """Everything after the match: check, choose protocol, run it.

    Shared by :func:`irecv_coro` and the rendezvous fallback of the
    callback-chained :func:`eager_irecv_fast` path.
    """
    _signature_check(header["signature"], _times(dt.signature, count))

    if header["eager"]:
        t0 = proc.sim.now
        gdr = header.get("gpudirect", False)
        got = yield from _eager_unpack_coro(
            proc, buf, dt, count, payload, gpudirect=gdr,
        )
        mode = "gpudirect" if gdr else ""
        if proc.log_transfers:
            proc.record_transfer(TransferStats(
                tid=f"{proc.rank}.eager.{next(_tids)}", role="recv",
                peer=env.source, protocol="eager", mode=mode,
                total_bytes=got, frag_bytes=got, fragments=1,
                max_in_flight=1, start_s=t0, end_s=proc.sim.now,
            ))
        else:
            proc.count_transfer("recv", "eager", mode, got)
        return Status(source=env.source, tag=env.tag, count_bytes=got)

    tid = header["tid"]
    s_info: SideInfo = header["side"]
    src_proc = world.procs[sender_rank]
    btl_back = world.bml.btl_for(proc, src_proc)
    r_info = describe_side(proc, buf, dt, count)
    protocol = choose_protocol(
        s_info, r_info, btl_back, preferred=s_info.preferred_protocol
    )

    state = TransferState(
        proc=proc,
        btl=btl_back,
        tid=tid,
        dt=dt,
        count=count,
        buf=buf,
        total=min(s_info.total, dt.size * count),
        # the sender dictates the fragmentation (its ring is sized for it)
        frag_bytes=s_info.frag_bytes,
        depth=s_info.ring_segments,
        role="r",
    )
    state.stats.peer = env.source
    state.stats.protocol = protocol
    state.bind_inbox("frag")
    state.bind_inbox("done")
    try:
        if protocol == "ipc_rdma":
            # the ipc_rdma receiver sends its own CTS (after mapping)
            result = yield from RECEIVERS[protocol](state, s_info, r_info)
        else:
            btl_back.am_send(
                state.peer("cts"), {"protocol": protocol, "side": r_info}
            )
            result = yield from RECEIVERS[protocol](state, s_info, r_info)
        state.stats.end_s = proc.sim.now
        if state.stats.fragments == 0:
            state.stats.fragments = 1
        proc.record_transfer(state.stats)
    finally:
        state.unbind_all("frag", "done")
        # answer retransmissions of fragments whose final ACK was lost
        state.seal()
    return Status(source=env.source, tag=env.tag, count_bytes=result)


def rts_handler(world: "MpiWorld", proc: "MpiProcess"):
    """The PML's match handler, registered once per rank."""

    def handle(pkt, _btl) -> None:
        env = pkt.envelope
        arrival = (env, pkt.header, pkt.payload, env.source)
        proc.matching.arrive(env, arrival)

    return handle


# ---------------------------------------------------------------------------
# callback-chained fast paths (host-contiguous eager, unsanitized)
# ---------------------------------------------------------------------------
#
# The coroutine PML above is the source of truth: it handles every
# placement, protocol, sanitizer, and fault combination.  The two
# functions below are a hand-scheduled rendering of exactly one slice of
# it — host buffer, flat-contiguous datatype, eager size, no faults, no
# sanitizers — chaining plain future callbacks instead of spawning a
# Process per operation.  They issue the *same* engine transfers in the
# same order at the same simulated times, so modeled results are
# bit-identical to the coroutine path; only the Python-side overhead
# (two Process allocations and ~6 generator resumptions per message)
# disappears.  Anything they cannot prove safe falls back to the
# coroutines, which therefore remain the behavioural reference.


def eager_fast_ok(proc: "MpiProcess", buf: Buffer, dt: Datatype, count: int) -> bool:
    """Is the hand-scheduled eager path valid for this operation?"""
    if proc.faults is not None or _san.RACE is not None or _san.MEM is not None:
        return False
    if not buf.is_host:
        return False
    dt.commit()
    return dt.is_contiguous and (count == 1 or dt.extent == dt.size)


def _eager_header(proc: "MpiProcess", dt: Datatype, count: int, total: int) -> dict:
    """The (immutable, shareable) eager RTS header for (dt, count).

    Receivers only ever read headers, so repeated same-shape sends reuse
    one dict; the cache holds a strong dt ref to keep ``id(dt)`` valid
    and hits verify identity, mirroring the convertor cache.
    """
    cache = proc._eager_hdr_cache
    key = (id(dt), count)
    hit = cache.get(key)
    if hit is not None and hit[0] is dt:
        return hit[1]
    if len(cache) >= 256:
        cache.clear()
    header = {
        "eager": True,
        "total": total,
        "signature": _times(dt.signature, count),
        "gpudirect": False,
    }
    cache[key] = (dt, header)
    return header


def eager_isend_fast(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    dest: int,
    tag: int,
    comm_id: int = 0,
) -> Future:
    """Host-contiguous eager send as a callback chain (no Process).

    Returns a future resolving with ``None`` at wire delivery — the same
    completion point and value as the :func:`isend_coro` eager branch.
    """
    total = dt.size * count
    dst_proc = world.procs[dest]
    btl = world.bml.btl_for(proc, dst_proc)
    env = Envelope(
        source=proc.rank, dest=dest, tag=tag, comm_id=comm_id,
        pair_seq=proc.next_send_seq(dest, comm_id),
    )
    header = _eager_header(proc, dt, count, total)
    sim = proc.sim
    done = Future(sim, label="eager-send")
    log = proc.log_transfers
    t0 = sim.now if log else 0.0
    if total == 0:
        data = np.empty(0, dtype=np.uint8)
        wire = btl.am_send("pml.rts", header, payload=data, envelope=env,
                           owned=True)

        def sent0(_f: Future) -> None:
            if log:
                proc.record_transfer(TransferStats(
                    tid=f"{proc.rank}.eager.{next(_tids)}", role="send",
                    peer=dest, protocol="eager", mode="",
                    total_bytes=0, frag_bytes=0, fragments=1,
                    max_in_flight=1, start_s=t0, end_s=sim.now,
                ))
            else:
                proc.count_transfer("send", "eager", "", 0)
            done.resolve(None)

        wire.add_callback(sent0)
        return done
    stage = np.empty(total, dtype=np.uint8)
    src = buf.bytes
    pack = proc.node.cpu_memcpy_engine.transfer(total, label="cpu-pack")

    def packed(_f: Future) -> None:
        stage[0:total] = src[:total]
        wire = btl.am_send("pml.rts", header, payload=stage, envelope=env,
                           owned=True)

        def sent(_f2: Future) -> None:
            if log:
                proc.record_transfer(TransferStats(
                    tid=f"{proc.rank}.eager.{next(_tids)}", role="send",
                    peer=dest, protocol="eager", mode="",
                    total_bytes=total, frag_bytes=total, fragments=1,
                    max_in_flight=1, start_s=t0, end_s=sim.now,
                ))
            else:
                proc.count_transfer("send", "eager", "", total)
            done.resolve(None)

        wire.add_callback(sent)

    pack.add_callback(packed)
    return done


def eager_irecv_fast(
    world: "MpiWorld",
    proc: "MpiProcess",
    buf: Buffer,
    dt: Datatype,
    count: int,
    source: int,
    tag: int,
    comm_id: int = 0,
) -> Future:
    """Host-contiguous receive as a callback chain (no Process).

    Eager arrivals unpack inline; a rendezvous RTS falls back to the
    coroutine continuation (:func:`_matched_recv_coro`), so the fast
    path never has to understand the pipelined protocols.  Resolves
    with the :class:`Status`, like :func:`irecv_coro`.
    """
    sim = proc.sim
    result = Future(sim, label="eager-recv")
    on_match = Future(sim, label=proc._match_label)
    want_sig = _times(dt.signature, count)
    size = dt.size * count
    log = proc.log_transfers

    def matched(mf: Future) -> None:
        env, header, payload, sender_rank = mf._value
        if not header["eager"] or header.get("gpudirect", False):
            # rendezvous (or a gpudirect eager pack): run the coroutine
            # continuation and mirror its outcome onto ``result``
            p = sim.spawn(
                _matched_recv_coro(
                    world, proc, buf, dt, count,
                    env, header, payload, sender_rank,
                ),
                label="irecv-rest",
                eager_start=True,
            )

            def finish(f: Future) -> None:
                if f._exception is not None:
                    result.fail(f._exception)
                else:
                    result.resolve(f._value)

            p.add_callback(finish)
            return
        try:
            _signature_check(header["signature"], want_sig)
        except BaseException as err:
            result.fail(err)
            return
        t0 = sim.now
        total = min(size, len(payload))
        if total == 0:
            if log:
                proc.record_transfer(TransferStats(
                    tid=f"{proc.rank}.eager.{next(_tids)}", role="recv",
                    peer=env.source, protocol="eager", mode="",
                    total_bytes=0, frag_bytes=0, fragments=1,
                    max_in_flight=1, start_s=t0, end_s=sim.now,
                ))
            else:
                proc.count_transfer("recv", "eager", "", 0)
            result.resolve(Status(source=env.source, tag=env.tag,
                                  count_bytes=0))
            return
        unpack = proc.node.cpu_memcpy_engine.transfer(total, label="cpu-unpack")
        dst = buf.bytes

        def unpacked(_f: Future) -> None:
            dst[0:total] = payload[:total]
            if log:
                proc.record_transfer(TransferStats(
                    tid=f"{proc.rank}.eager.{next(_tids)}", role="recv",
                    peer=env.source, protocol="eager", mode="",
                    total_bytes=total, frag_bytes=total, fragments=1,
                    max_in_flight=1, start_s=t0, end_s=sim.now,
                ))
            else:
                proc.count_transfer("recv", "eager", "", total)
            result.resolve(Status(source=env.source, tag=env.tag,
                                  count_bytes=total))

        unpack.add_callback(unpacked)

    on_match.add_callback(matched)
    proc.matching.post(
        PostedRecv(source=source, tag=tag, comm_id=comm_id, on_match=on_match)
    )
    _ver = _san.VERIFY
    if _ver is not None:
        _vtok = _ver.wait_begin(
            "recv", proc.rank, sim,
            peer=None if source < 0 else source,
            tag=None if tag < 0 else tag,
            comm_id=comm_id, world=world,
        )
        result.add_callback(lambda _f: _ver.wait_end(_vtok))
    return result
