"""Message envelopes and wire-format bookkeeping."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "AmPacket"]

ANY_SOURCE = -1
ANY_TAG = -1

_seq = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """MPI matching triple plus ordering sequence numbers.

    ``seq`` is a global send-order stamp (used to pick the earliest
    unexpected message); ``pair_seq`` is the contiguous per
    (sender, dest, comm) counter the receiver's matching engine uses to
    re-sequence arrivals — eager packs of different sizes (or
    fault-injected delays) can deliver a later-posted message first, and
    MPI's non-overtaking rule says matching must still follow post
    order.  ``-1`` means unordered (no re-sequencing)."""

    source: int
    dest: int
    tag: int
    comm_id: int
    seq: int = field(default_factory=lambda: next(_seq))
    pair_seq: int = -1

    def matches(self, want_source: int, want_tag: int) -> bool:
        """Does this envelope satisfy a posted (source, tag) pair?"""
        src_ok = want_source == ANY_SOURCE or want_source == self.source
        tag_ok = want_tag == ANY_TAG or want_tag == self.tag
        return src_ok and tag_ok


@dataclass
class AmPacket:
    """One Active Message: handler name, small header, optional payload.

    The payload, when present, is a *snapshot* of the bytes at send time
    (the BTL copies out of the user/staging buffer), matching real
    transports where the NIC DMA-reads the send buffer at issue.
    """

    handler: str
    header: dict[str, Any]
    payload: Optional[np.ndarray] = None
    envelope: Optional[Envelope] = None

    @property
    def payload_bytes(self) -> int:
        return 0 if self.payload is None else int(self.payload.nbytes)
