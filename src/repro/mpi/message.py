"""Message envelopes and wire-format bookkeeping."""

from __future__ import annotations

import itertools
from typing import Any, Optional

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "AmPacket"]

ANY_SOURCE = -1
ANY_TAG = -1

_seq = itertools.count()


class Envelope:
    """MPI matching triple plus ordering sequence numbers.

    ``seq`` is a global send-order stamp (used to pick the earliest
    unexpected message); ``pair_seq`` is the contiguous per
    (sender, dest, comm) counter the receiver's matching engine uses to
    re-sequence arrivals — eager packs of different sizes (or
    fault-injected delays) can deliver a later-posted message first, and
    MPI's non-overtaking rule says matching must still follow post
    order.  ``-1`` means unordered (no re-sequencing).

    A plain ``__slots__`` class (one is built per message; the frozen
    dataclass it used to be paid ~6 ``object.__setattr__`` calls each).
    """

    __slots__ = ("source", "dest", "tag", "comm_id", "seq", "pair_seq")

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        comm_id: int,
        seq: Optional[int] = None,
        pair_seq: int = -1,
    ) -> None:
        self.source = source
        self.dest = dest
        self.tag = tag
        self.comm_id = comm_id
        self.seq = next(_seq) if seq is None else seq
        self.pair_seq = pair_seq

    def matches(self, want_source: int, want_tag: int) -> bool:
        """Does this envelope satisfy a posted (source, tag) pair?"""
        src_ok = want_source == ANY_SOURCE or want_source == self.source
        tag_ok = want_tag == ANY_TAG or want_tag == self.tag
        return src_ok and tag_ok

    def __repr__(self) -> str:
        return (
            f"Envelope(source={self.source}, dest={self.dest}, "
            f"tag={self.tag}, comm_id={self.comm_id}, seq={self.seq}, "
            f"pair_seq={self.pair_seq})"
        )


class AmPacket:
    """One Active Message: handler name, small header, optional payload.

    The payload, when present, is a *snapshot* of the bytes at send time
    (the BTL copies out of the user/staging buffer), matching real
    transports where the NIC DMA-reads the send buffer at issue.
    """

    __slots__ = ("handler", "header", "payload", "envelope")

    def __init__(
        self,
        handler: str,
        header: dict[str, Any],
        payload: Optional[np.ndarray] = None,
        envelope: Optional[Envelope] = None,
    ) -> None:
        self.handler = handler
        self.header = header
        self.payload = payload
        self.envelope = envelope

    @property
    def payload_bytes(self) -> int:
        return 0 if self.payload is None else int(self.payload.nbytes)

    def __repr__(self) -> str:
        return (
            f"AmPacket({self.handler!r}, {self.payload_bytes}B, "
            f"envelope={self.envelope!r})"
        )
