"""MPI request and status objects (``MPI_Request`` / ``MPI_Status``)."""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.core import Future, Process

__all__ = ["Request", "Status"]


class Status:
    """Completion information of a receive (``MPI_Status``)."""

    __slots__ = ("source", "tag", "count_bytes")

    def __init__(self, source: int, tag: int, count_bytes: int) -> None:
        self.source = source
        self.tag = tag
        self.count_bytes = count_bytes

    def get_count(self, datatype) -> int:
        """Number of whole ``datatype`` elements received (MPI_Get_count)."""
        if datatype.size == 0:
            return 0
        if self.count_bytes % datatype.size:
            return -1  # MPI_UNDEFINED: a partial element arrived
        return self.count_bytes // datatype.size

    def __repr__(self) -> str:
        return (
            f"Status(source={self.source}, tag={self.tag}, "
            f"count_bytes={self.count_bytes})"
        )


class Request:
    """Handle on an in-flight isend/irecv.

    A :class:`Request` *is* awaitable — ranks ``yield req`` to wait —
    and exposes ``test()`` for polling loops.
    """

    def __init__(self, proc: Process, kind: str, nbytes: int) -> None:
        self._proc = proc
        self.kind = kind  # "send" | "recv"
        self.nbytes = nbytes

    @property
    def future(self) -> Process:
        return self._proc

    @property
    def done(self) -> bool:
        return self._proc.done

    def test(self) -> bool:
        """Non-blocking completion check (MPI_Test)."""
        return self._proc.done

    @property
    def value(self) -> Any:
        return self._proc.value

    # duck-type as a Future so `yield request` works inside rank programs
    def add_callback(self, cb) -> None:
        """Future-protocol hook so ``yield request`` works in programs."""
        self._proc.add_callback(cb)

    @property
    def failed(self) -> bool:
        return self._proc.failed

    @property
    def exception(self) -> Optional[BaseException]:
        return self._proc.exception

    @property
    def _value(self):  # Future resume protocol
        return self._proc._value

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"Request({self.kind}, {self.nbytes}B, {state})"
