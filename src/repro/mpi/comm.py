"""Communicators: isolated matching contexts over the world group.

Mirrors the part of ``MPI_Comm`` semantics the matching engine depends
on: every communicator has its own context id, so identical (source, tag)
pairs on different communicators never match each other — the property
libraries rely on to keep their internal traffic away from application
messages.

``dup`` produces a same-group communicator with a fresh context id
(``MPI_Comm_dup``).  Group-subsetting (``MPI_Comm_split``) is not
implemented: ranks here are always world ranks.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.mpi.world import MpiWorld

__all__ = ["Communicator"]

_context_ids = itertools.count(1)  # 0 is COMM_WORLD


class Communicator:
    """A context id over the full world group."""

    def __init__(self, world: "MpiWorld", comm_id: int = 0) -> None:
        self.world = world
        self.comm_id = comm_id
        self.freed = False

    @property
    def size(self) -> int:
        return self.world.size

    def dup(self) -> "Communicator":
        """A new communicator with the same group, fresh context id."""
        return Communicator(self.world, next(_context_ids))

    def free(self) -> None:
        """Release the context id (``MPI_Comm_free``).

        Resources held on the communicator's behalf — e.g. DevCache
        entries pinned with its context id — must be released *before*
        the free: the verifier's finalize audit flags pins that outlive
        their communicator (``verify.cache_pin_leak``).  Idempotent;
        COMM_WORLD cannot be freed.
        """
        if self.comm_id == 0:
            raise ValueError("COMM_WORLD cannot be freed")
        if not self.freed:
            self.freed = True
            self.world._comm_freed(self.comm_id)

    def __repr__(self) -> str:
        tag = "WORLD" if self.comm_id == 0 else f"ctx{self.comm_id}"
        return f"Communicator({tag}, size={self.size})"
