"""The fault model: a seeded plan of injected failures.

A :class:`FaultSpec` is pure configuration (probabilities, seed, which
Active-Message kinds are targeted); a :class:`FaultPlan` is the live
object consulted by the BTL, the CUDA IPC layer and the staging pool.
All randomness flows from one ``random.Random(seed)`` consumed in
simulation-event order, so a given (seed, workload) pair injects the
exact same faults on every run — chaos tests are reproducible.

Injection is restricted to the *data plane* by default: the per-fragment
``frag`` notifications and their ``ack`` replies, which is what the
retransmit/dedupe machinery in :mod:`repro.mpi.protocols.common`
recovers from.  The rendezvous control handshake (RTS/CTS/done) rides a
reliable control channel, as in real transports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace
from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AmFault",
    "FaultPlan",
    "FaultSpec",
    "IpcOpenError",
    "StagingError",
    "TransferTimeout",
]


class IpcOpenError(RuntimeError):
    """An injected (or modeled) cudaIpcOpenMemHandle failure."""


class StagingError(RuntimeError):
    """An injected staging-allocation failure (memory pressure)."""


class TransferTimeout(RuntimeError):
    """A fragment was retransmitted ``max_retries`` times without an ACK."""


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault-injection configuration (all probabilities in [0, 1])."""

    #: RNG seed — the whole plan is a pure function of this and call order
    seed: int = 0
    #: probability a targeted Active Message is silently dropped
    am_drop: float = 0.0
    #: probability a targeted Active Message is delivered twice
    am_dup: float = 0.0
    #: probability a targeted Active Message is delayed (reordering)
    am_delay: float = 0.0
    #: extra delivery delay applied to delayed messages, seconds
    am_delay_s: float = 500e-6
    #: probability a (non-cached) CUDA IPC open fails
    ipc_open_fail: float = 0.0
    #: probability an *optional* staging allocation is refused
    staging_fail: float = 0.0
    #: stop injecting after this many faults (None = unbounded)
    max_faults: Optional[int] = None
    #: AM handler suffixes eligible for injection (the data plane)
    targets: tuple = ("frag", "ack")

    def __post_init__(self) -> None:
        for name in ("am_drop", "am_dup", "am_delay", "ipc_open_fail",
                     "staging_fail"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"FaultSpec.{name} must be in [0, 1], got {p}")
        if self.am_delay_s < 0:
            raise ValueError(f"FaultSpec.am_delay_s must be >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("FaultSpec.max_faults must be >= 0 or None")

    @property
    def active(self) -> bool:
        """True when any injection can actually happen."""
        return any(
            getattr(self, n) > 0.0
            for n in ("am_drop", "am_dup", "am_delay", "ipc_open_fail",
                      "staging_fail")
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from ``"seed=3,am_drop=0.1,..."`` CLI syntax."""
        spec = cls()
        if not text:
            return spec
        kinds = {f.name: f.type for f in fields(cls)}
        kw: dict = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"--faults entry {item!r} is not key=value")
            key, _, raw = item.partition("=")
            key = key.strip()
            if key not in kinds:
                raise ValueError(
                    f"unknown fault knob {key!r}; valid: {sorted(kinds)}"
                )
            if key == "targets":
                kw[key] = tuple(t for t in raw.split("+") if t)
            elif key in ("seed", "max_faults"):
                kw[key] = int(raw)
            else:
                kw[key] = float(raw)
        return replace(spec, **kw)


@dataclass(frozen=True)
class AmFault:
    """What to do to one Active Message in flight."""

    drop: bool = False
    dup: bool = False
    delay_s: float = 0.0


class FaultPlan:
    """Live injector: one shared RNG, consumed in simulation-event order.

    Every injected fault bumps a counter under the registry scope handed
    in (``faults.`` from :class:`repro.mpi.world.MpiWorld`), so chaos
    runs can assert both that faults actually fired and that the stack
    absorbed them.
    """

    def __init__(
        self,
        spec: FaultSpec,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry().scoped("faults.")
        )
        self.injected = 0

    @property
    def active(self) -> bool:
        return self.spec.active

    # -- the single biased coin every injection point flips ----------------
    def _fire(self, p: float, counter: str) -> bool:
        if p <= 0.0:
            return False
        if (
            self.spec.max_faults is not None
            and self.injected >= self.spec.max_faults
        ):
            return False
        if self.rng.random() >= p:
            return False
        self.injected += 1
        self.metrics.counter(counter).inc()
        return True

    # -- injection points --------------------------------------------------
    def am_decision(self, handler: str) -> Optional[AmFault]:
        """Fault (if any) for an Active Message bound for ``handler``.

        Only data-plane handlers (``targets`` suffixes) are eligible;
        everything else is delivered untouched without consuming RNG
        state, so adding control messages never perturbs a seeded plan.
        """
        suffix = handler.rsplit(".", 1)[-1]
        if suffix not in self.spec.targets:
            return None
        if self._fire(self.spec.am_drop, "am_drop"):
            return AmFault(drop=True)
        dup = self._fire(self.spec.am_dup, "am_dup")
        delay = (
            self.spec.am_delay_s
            if self._fire(self.spec.am_delay, "am_delay")
            else 0.0
        )
        if dup or delay > 0.0:
            return AmFault(dup=dup, delay_s=delay)
        return None

    def fail_ipc_open(self) -> bool:
        """Should this (first, uncached) CUDA IPC open fail?"""
        return self._fire(self.spec.ipc_open_fail, "ipc_open_fail")

    def fail_staging(self, kind: str) -> bool:
        """Should this optional staging allocation be refused?"""
        return self._fire(self.spec.staging_fail, f"staging_fail.{kind}")
