"""Deterministic fault injection for the rendezvous stack.

The paper's protocols assume every Active Message arrives, every CUDA
IPC ``open`` succeeds and every staging allocation is granted.  This
package breaks those assumptions on purpose: a seed-driven
:class:`FaultPlan` injects failures at exactly the layers the paper
treats as infallible — BTL ``am_send`` (drop / duplicate / delay),
``IpcMemHandle.open`` (mapping failure) and optional staging allocation
(memory pressure) — so the retry/fallback machinery in the protocols can
be exercised deterministically.  See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.plan import (
    AmFault,
    FaultPlan,
    FaultSpec,
    IpcOpenError,
    StagingError,
    TransferTimeout,
)

__all__ = [
    "AmFault",
    "FaultPlan",
    "FaultSpec",
    "IpcOpenError",
    "StagingError",
    "TransferTimeout",
]
