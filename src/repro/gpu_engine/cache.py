"""Caching of CUDA_DEV work-unit arrays.

"As the CUDA_DEV is tied to the data representation and is independent of
the location of the source and destination buffers, it can be cached,
either in the main or GPU memory, thereby minimizing the overheads of
future pack/unpack operations ... by spending a few MBs of GPU memory to
cache the CUDA_DEVs, the packing/unpacking performance could be
significantly improved when using the same data type repetitively"
(Sections 3.2 and 5.1 — the ``cached`` curves of Fig 7).

The cache charges real simulated GPU memory for the descriptor arrays and
evicts LRU when its budget is exhausted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.datatype.ddt import Datatype
from repro.gpu_engine.dev import to_devs
from repro.gpu_engine.work_units import WorkUnits, split_units
from repro.hw.gpu import Gpu
from repro.hw.memory import Buffer

__all__ = ["DevCache"]


class DevCache:
    """Per-GPU LRU cache of work-unit arrays, resident in device memory."""

    def __init__(self, gpu: Gpu, budget_bytes: int = 64 * 1024 * 1024) -> None:
        self.gpu = gpu
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[tuple, tuple[WorkUnits, Optional[Buffer]]] = (
            OrderedDict()
        )
        self.bytes_cached = 0
        self.hits = 0
        self.misses = 0

    def _key(self, dt: Datatype, count: int, unit_size: int) -> tuple:
        return (dt.type_id, count, unit_size)

    def get(self, dt: Datatype, count: int, unit_size: int) -> Optional[WorkUnits]:
        """Cached unit array for (datatype, count, S), or None on miss."""
        key = self._key(dt, count, unit_size)
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return hit[0]

    def put(
        self,
        dt: Datatype,
        count: int,
        unit_size: int,
        units: Optional[WorkUnits] = None,
    ) -> WorkUnits:
        """Cache (charging GPU memory) and return the unit array.

        ``units`` may be passed when the caller already computed the split.
        """
        key = self._key(dt, count, unit_size)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            return cached[0]
        if units is None:
            units = split_units(to_devs(dt, count), unit_size)
        need = units.descriptor_bytes
        while self.bytes_cached + need > self.budget_bytes and self._entries:
            _, (old, buf) = self._entries.popitem(last=False)
            self.bytes_cached -= old.descriptor_bytes
            if buf is not None:
                buf.free()
        dev_buf: Optional[Buffer] = None
        if need > 0 and need <= self.budget_bytes:
            dev_buf = self.gpu.memory.alloc(need, label="dev-cache")
            self.bytes_cached += need
        self._entries[key] = (units, dev_buf)
        return units

    def __len__(self) -> int:
        return len(self._entries)
