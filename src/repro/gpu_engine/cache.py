"""Caching of CUDA_DEV work-unit arrays.

"As the CUDA_DEV is tied to the data representation and is independent of
the location of the source and destination buffers, it can be cached,
either in the main or GPU memory, thereby minimizing the overheads of
future pack/unpack operations ... by spending a few MBs of GPU memory to
cache the CUDA_DEVs, the packing/unpacking performance could be
significantly improved when using the same data type repetitively"
(Sections 3.2 and 5.1 — the ``cached`` curves of Fig 7).

The cache charges real simulated GPU memory for the descriptor arrays and
evicts LRU when its budget is exhausted.  Accounting is strict: every
resident entry is charged exactly its ``descriptor_bytes``, oversized
descriptors are refused outright (they would otherwise be inserted
uncharged and drive ``bytes_cached`` negative on eviction), and the
invariant ``0 <= bytes_cached <= budget_bytes`` is checked after every
mutation.

Entries are keyed on the **canonical key** of ``(datatype, count, S)``
(:func:`repro.datatype.canonical.canonical_key`), not on object identity:
the CUDA_DEV work list depends only on the type's flattened span layout,
so two structurally identical datatypes built separately — two tenants,
the same workload re-run, a ``vector`` vs an equivalent ``hindexed`` —
share one resident descriptor array instead of silently re-paying the
first-iteration preparation cost per construction.

Counter semantics: ``hits``/``misses`` are **lookup-only** (``get``, and
the lookup half of ``put``'s miss path).  ``put`` finding its key already
resident records ``put_resident`` instead of a hit, so pre-populating via
:meth:`put`/``warm_cache`` can never inflate the observed hit rate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.datatype.canonical import canonical_key
from repro.datatype.ddt import Datatype
from repro.gpu_engine.dev import to_devs
from repro.gpu_engine.work_units import WorkUnits, split_units
from repro.hw.gpu import Gpu
from repro.hw.memory import Buffer
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import CacheStats

__all__ = ["DevCache", "CacheInvariantError"]


class CacheInvariantError(AssertionError):
    """The cache's byte accounting went inconsistent (a bug, not a state)."""


class DevCache:
    """Per-GPU LRU cache of work-unit arrays, resident in device memory."""

    def __init__(
        self,
        gpu: Gpu,
        budget_bytes: int = 64 * 1024 * 1024,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.gpu = gpu
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[tuple, tuple[WorkUnits, Optional[Buffer]]] = (
            OrderedDict()
        )
        self.bytes_cached = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.bytes_evicted = 0
        #: ``put`` calls that found their key already resident (distinct
        #: from ``hits`` so pre-population cannot inflate the hit rate)
        self.put_resident = 0
        #: descriptors larger than the whole budget, refused (never resident)
        self.rejected_oversized = 0
        #: inserts refused because every resident entry was pinned
        self.rejected_pinned = 0
        #: key -> set of communicator context ids holding a pin; pinned
        #: entries are exempt from LRU eviction until every pin is gone
        self._pins: dict[tuple, set[int]] = {}
        m = metrics if metrics is not None else MetricsRegistry().scoped("cache.")
        self._m_hits = m.counter("hits")
        self._m_misses = m.counter("misses")
        self._m_evictions = m.counter("evictions")
        self._m_put_resident = m.counter("put_resident")
        self._m_rejected = m.counter("rejected_oversized")
        self._m_bytes = m.gauge("bytes_cached")

    def _key(self, dt: Datatype, count: int, unit_size: int) -> tuple:
        """Structural cache key: canonical form + S, not object identity."""
        return canonical_key(dt, count, unit_size)

    # -- unified hit/miss accounting (the only place counters move) --------
    def _record_hit(self, key: tuple) -> WorkUnits:
        self._entries.move_to_end(key)
        self.hits += 1
        self._m_hits.inc()
        return self._entries[key][0]

    def _record_miss(self) -> None:
        self.misses += 1
        self._m_misses.inc()

    def _check_invariant(self) -> None:
        if not (0 <= self.bytes_cached <= self.budget_bytes):
            raise CacheInvariantError(
                f"DevCache accounting broken: bytes_cached={self.bytes_cached} "
                f"outside [0, {self.budget_bytes}]"
            )

    def get(self, dt: Datatype, count: int, unit_size: int) -> Optional[WorkUnits]:
        """Cached unit array for (datatype, count, S), or None on miss."""
        key = self._key(dt, count, unit_size)
        if key in self._entries:
            return self._record_hit(key)
        self._record_miss()
        return None

    def put(
        self,
        dt: Datatype,
        count: int,
        unit_size: int,
        units: Optional[WorkUnits] = None,
    ) -> WorkUnits:
        """Cache (charging GPU memory) and return the unit array.

        ``units`` may be passed when the caller already computed the split.
        A key already resident is recorded under ``put_resident`` — *not*
        as a hit: ``hits``/``misses`` count lookups only, so callers that
        pre-populate (``warm_cache``, double inserts) cannot inflate the
        observed hit rate.  The entry is still refreshed in LRU order.
        Descriptors larger than the whole budget are refused (returned
        uncached) rather than inserted uncharged.
        """
        key = self._key(dt, count, unit_size)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.put_resident += 1
            self._m_put_resident.inc()
            return self._entries[key][0]
        if units is None:
            units = split_units(to_devs(dt, count), unit_size)
        need = units.descriptor_bytes
        if need > self.budget_bytes:
            # refusing beats the alternative: an uncharged resident entry
            # whose eviction would subtract bytes it never added
            self.rejected_oversized += 1
            self._m_rejected.inc()
            return units
        self._evict_until_fits(need)
        if self.bytes_cached + need > self.budget_bytes:
            # every evictable entry is pinned; refuse rather than overflow
            self.rejected_pinned += 1
            return units
        dev_buf: Optional[Buffer] = None
        if need > 0:
            dev_buf = self.gpu.memory.alloc(need, label="dev-cache")
        self._entries[key] = (units, dev_buf)
        self.bytes_cached += need
        self.insertions += 1
        self._m_bytes.set(self.bytes_cached)
        self._check_invariant()
        return units

    def _evict_until_fits(self, need: int) -> None:
        """LRU-evict (charging symmetrically) until ``need`` bytes fit.

        Pinned entries are skipped; when only pinned entries remain the
        loop stops and :meth:`put` refuses the insert instead.
        """
        while self.bytes_cached + need > self.budget_bytes and self._entries:
            victim = None
            if self._pins:
                for key in self._entries:  # LRU order
                    if key not in self._pins:
                        victim = key
                        break
                if victim is None:
                    break  # everything resident is pinned
                old, buf = self._entries.pop(victim)
            else:
                _, (old, buf) = self._entries.popitem(last=False)
            self.bytes_cached -= old.descriptor_bytes
            self.bytes_evicted += old.descriptor_bytes
            self.evictions += 1
            self._m_evictions.inc()
            if buf is not None:
                buf.free()
        self._m_bytes.set(self.bytes_cached)
        self._check_invariant()

    # -- pinning -----------------------------------------------------------
    def pin(
        self, dt: Datatype, count: int, unit_size: int, comm_id: int = 0
    ) -> WorkUnits:
        """Insert (if needed) and pin an entry on behalf of a communicator.

        Pinned entries never leave via LRU eviction — a library that
        knows a datatype recurs for a communicator's lifetime can keep
        its descriptors resident.  The contract: release the pin
        (:meth:`unpin_comm`) before the communicator is freed; the
        verifier's finalize audit flags pins that outlive their
        communicator (``verify.cache_pin_leak``).  A refused insert
        (oversized, or everything else pinned) returns the units
        uncached and unpinned.
        """
        units = self.put(dt, count, unit_size)
        key = self._key(dt, count, unit_size)
        if key in self._entries:
            self._pins.setdefault(key, set()).add(comm_id)
        return units

    def unpin_comm(self, comm_id: int) -> int:
        """Drop every pin held by ``comm_id``; returns pins released."""
        released = 0
        for key in list(self._pins):
            pins = self._pins[key]
            if comm_id in pins:
                pins.discard(comm_id)
                released += 1
                if not pins:
                    del self._pins[key]
        return released

    def pinned_entries(self) -> list:
        """``[(key, frozenset(comm_ids))]`` for every pinned entry."""
        return [(k, frozenset(v)) for k, v in self._pins.items()]

    def clear(self) -> None:
        """Drop every entry, freeing its device memory (counters kept).

        Pins do not survive a clear — this is a teardown path, not an
        eviction.
        """
        while self._entries:
            _, (old, buf) = self._entries.popitem(last=False)
            self.bytes_cached -= old.descriptor_bytes
            if buf is not None:
                buf.free()
        self._pins.clear()
        self._m_bytes.set(self.bytes_cached)
        self._check_invariant()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (entries stay resident)."""
        self.hits = self.misses = 0
        self.insertions = self.evictions = 0
        self.bytes_evicted = 0
        self.put_resident = 0
        self.rejected_oversized = 0
        self.rejected_pinned = 0

    @property
    def resident_bytes(self) -> int:
        """Ground truth: sum of resident entries' descriptor bytes."""
        return sum(u.descriptor_bytes for u, _ in self._entries.values())

    def stats(self) -> CacheStats:
        """Structured accounting snapshot."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            insertions=self.insertions,
            evictions=self.evictions,
            put_resident=self.put_resident,
            rejected_oversized=self.rejected_oversized,
            entries=len(self._entries),
            bytes_cached=self.bytes_cached,
            bytes_evicted=self.bytes_evicted,
            budget_bytes=self.budget_bytes,
        )

    def __len__(self) -> int:
        return len(self._entries)
