"""Datatype Engine Vectors (DEVs).

"The first step is to convert the representation of the datatype from
stack-based into a collection of Datatype Engine Vectors (DEVs), where
each DEV contains the displacement of a block from the contiguous buffer,
the displacement of the corresponding block from the non-contiguous data
and the corresponding blocklength" (Section 3.2).

A DEV is one contiguous block of the flattened typemap; the destination
displacement is simply the running sum of block lengths (the contiguous
buffer is the pack destination / unpack source).  Because DEVs hold only
*relative* displacements they are reusable for any buffer pair — the
property both the CUDA_DEV cache and Open MPI's convertor caching rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatype.ddt import Datatype
from repro.obs import phases as _phases

__all__ = ["DevList", "to_devs"]


@dataclass(frozen=True)
class DevList:
    """Parallel arrays of <src_disp, dst_disp, length> block descriptors."""

    src_disps: np.ndarray  # displacement in the non-contiguous layout
    dst_disps: np.ndarray  # displacement in the packed stream
    lens: np.ndarray  # block length in bytes

    @property
    def count(self) -> int:
        return int(self.lens.size)

    @property
    def total_bytes(self) -> int:
        return int(self.lens.sum()) if self.count else 0

    def __repr__(self) -> str:
        return f"DevList(count={self.count}, bytes={self.total_bytes})"


def to_devs(dt: Datatype, count: int = 1) -> DevList:
    """Convert ``count`` elements of a committed datatype into DEVs."""
    with _phases.measure(_phases.DEV_BUILD):
        spans = dt.spans_for_count(count)
        return DevList(
            src_disps=spans.disps,
            dst_disps=spans.packed_offsets(),
            lens=spans.lens,
        )
