"""Specialized pack/unpack kernel for vector-like datatypes (Section 3.1).

"The pack kernel takes the address of the source and the destination
buffers, blocklength, stride, and block count as arguments, and is
launched in a dedicated CUDA stream."  Rows are consumed at warp
granularity — coalesced 8-byte accesses per thread — with a
prologue/middle/epilogue split when the block is not 8-byte aligned.

No CPU-side preparation exists for this kernel: that is why the paper's
Fig 7 shows pipeline/cached variants only for the indexed (triangular)
type — the vector path has nothing to prepare or cache.
"""

from __future__ import annotations

from repro.datatype.ddt import VectorShape
from repro.hw.gpu import Gpu, KernelStats

__all__ = ["vector_kernel_stats", "is_aligned"]


def is_aligned(shape: VectorShape) -> bool:
    """8-byte alignment of every block (no prologue/epilogue needed)."""
    return (
        shape.blocklength % 8 == 0
        and shape.first_disp % 8 == 0
        and shape.stride % 8 == 0
    )


def vector_kernel_stats(
    gpu: Gpu,
    shape: VectorShape,
    rows: int | None = None,
    grid_blocks: int | None = None,
) -> KernelStats:
    """Kernel cost for packing/unpacking ``rows`` blocks of the shape.

    ``rows`` defaults to the full count (fragments pass a sub-range).
    """
    n = shape.count if rows is None else rows
    return gpu.vector_kernel_stats(
        count=n,
        blocklength_bytes=shape.blocklength,
        grid_blocks=grid_blocks,
        aligned=is_aligned(shape),
    )
