"""The GPU datatype engine driver.

:class:`GpuDatatypeEngine` turns (datatype, count, user buffer) into a
:class:`PackJob`: a fragment plan plus the machinery to pack or unpack
each fragment with the right kernel, pipelined with the CPU preparation
stage and optionally fed from the CUDA_DEV cache.

Fragment processing is the engine's contract with the communication
protocols (Section 4): the pipelined RDMA and copy-in/out protocols call
``process_fragment`` per ring-buffer segment, so pack, wire transfer and
unpack genuinely overlap on the simulated clock.

Zero-copy targets (UMA-mapped host memory) are handled here too: the
kernel's effective duration is clamped by PCIe and the PCIe direction is
co-occupied for the fragment, reproducing the "implicitly handled by
hardware, able to overlap with pack/unpack" behaviour of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cuda.uma import is_mapped_host
from repro.datatype.canonical import (
    GPU_PLANS,
    PLAN_GATHER,
    PLAN_MEMCPY,
    PLAN_VECTOR_KERNEL,
    canonicalize,
    feasible_gpu_plans,
    select_gpu_plan,
)
from repro.datatype.convertor import Convertor
from repro.datatype.ddt import Datatype, VectorShape
from repro.gpu_engine.cache import DevCache
from repro.gpu_engine.dev import to_devs
from repro.gpu_engine.dev_kernel import dev_kernel_stats
from repro.gpu_engine.vector_kernel import vector_kernel_stats
from repro.gpu_engine.work_units import WorkUnits, split_units
from repro.hw.gpu import Gpu, KernelStats, Stream
from repro.hw.memory import Buffer
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import EngineStats
from repro.sanitize import runtime as _san
from repro.sim.core import Future, all_of

__all__ = ["EngineOptions", "Fragment", "PackJob", "GpuDatatypeEngine"]


@dataclass(frozen=True)
class EngineOptions:
    """Knobs the paper evaluates."""

    #: CUDA_DEV size S (1/2/4 KB in the paper; 4 KB default)
    unit_size: Optional[int] = None
    #: overlap CPU DEV preparation with kernel execution (Fig 7 "pipeline")
    pipeline_prep: bool = True
    #: reuse cached CUDA_DEV arrays (Fig 7 "cached")
    use_cache: bool = True
    #: CUDA blocks granted to pack kernels (Section 5.3); None = default grid
    grid_blocks: Optional[int] = None
    #: force the generic DEV path even for vector-describable types
    force_dev_path: bool = False


@dataclass(frozen=True)
class Fragment:
    """One pipeline fragment: packed-stream bytes [lo, hi)."""

    index: int
    lo: int
    hi: int
    unit_lo: int  # unit range (DEV path) or row range (vector path)
    unit_hi: int

    @property
    def nbytes(self) -> int:
        return self.hi - self.lo


class PackJob:
    """Pack or unpack of one (datatype, count, user buffer) triple."""

    def __init__(
        self,
        engine: "GpuDatatypeEngine",
        dt: Datatype,
        count: int,
        user_buf: Buffer,
        direction: str,
        options: EngineOptions,
    ) -> None:
        if direction not in ("pack", "unpack"):
            raise ValueError("direction must be 'pack' or 'unpack'")
        self.engine = engine
        self.gpu = engine.gpu
        self.dt = dt
        self.count = count
        self.user_buf = user_buf
        self.direction = direction
        self.options = options
        self.total_bytes = dt.size * count
        p = self.gpu.params
        self.unit_size = options.unit_size or p.dev_unit_size
        self.convertor = Convertor(dt, count, user_buf.bytes, direction)

        self.form = canonicalize(dt, count)
        #: autotuner hook (docs/AUTOTUNER.md): learned seconds-per-byte
        #: may override the hand-set cost model, but only among the
        #: form's feasible plans and only with full coverage; the forced
        #: DEV ablation and the static model stay the fallbacks.  The
        #: key is kept for observation even when no decision applies, so
        #: training runs (mode "observe", force_dev sweeps) build history.
        tuner = engine.tuner
        self._tune_key: Optional[str] = None
        plan = None
        if tuner is not None and self.form.kind != "empty":
            self._tune_key = tuner.plan_key(self.form, self.total_bytes)
            if not options.force_dev_path:
                plan = tuner.decide_plan(
                    self._tune_key, feasible_gpu_plans(self.form)
                )
        if plan is None:
            plan = select_gpu_plan(self.form, force_dev=options.force_dev_path)
        self.plan = plan
        shape = (
            self.form.vector_shape
            if self.plan in (PLAN_MEMCPY, PLAN_VECTOR_KERNEL)
            else None
        )
        if shape is None:
            # the empty form has no vector view; it rides the (trivially
            # empty) DEV path like any other non-vector layout
            self.plan = PLAN_GATHER
        self.vector_shape: Optional[VectorShape] = shape
        engine._m_plans[self.plan].inc()
        self.units: Optional[WorkUnits] = None
        self._prepped_units = 0
        self._prep_charged = False
        #: in-flight preparation (see :meth:`prepare_for`): fragments whose
        #: units were claimed by an earlier, still-running prep must wait
        #: for it — launching their kernel early would consume DEV
        #: descriptors the CPU has not finished building
        self._prep_fut: Optional[Future] = None
        if shape is None:
            cached = None
            if options.use_cache:
                cached = engine.cache.get(dt, count, self.unit_size)
            if cached is not None:
                self.units = cached
                self._prepped_units = cached.count
                self._prep_charged = True
            else:
                self.units = split_units(to_devs(dt, count), self.unit_size)
                if options.use_cache:
                    # future jobs on this type skip preparation entirely;
                    # this job still pays it (first use warms the cache)
                    engine.cache.put(dt, count, self.unit_size, units=self.units)
        self.stream = engine.stream
        if _san.MEM is not None:
            _san.MEM.check_gpu_path(
                user_buf,
                mapped=not user_buf.is_host or is_mapped_host(user_buf),
                what=f"PackJob({direction}, {dt.kind}x{count})",
            )
        if _san.DEV is not None and self.units is not None:
            _san.DEV.check_job(
                dt, count, self.unit_size, self.units, cache_hit=self._prep_charged
            )

    # -- planning ------------------------------------------------------------
    @property
    def uses_vector_kernel(self) -> bool:
        return self.vector_shape is not None

    def fragments(self, frag_bytes: int) -> list[Fragment]:
        """Split the packed stream into pipeline fragments.

        DEV-path fragments align to work-unit boundaries; vector-path
        fragments align to whole rows.  Either way fragment boundaries are
        granularity-aligned so the convertor fast path applies.
        """
        if frag_bytes <= 0:
            raise ValueError("frag_bytes must be positive")
        frags: list[Fragment] = []
        if self.total_bytes == 0:
            return frags
        if self.uses_vector_kernel:
            shape = self.vector_shape
            assert shape is not None
            rows_per_frag = max(1, frag_bytes // max(1, shape.blocklength))
            i = 0
            for row_lo in range(0, shape.count, rows_per_frag):
                row_hi = min(shape.count, row_lo + rows_per_frag)
                frags.append(
                    Fragment(
                        i,
                        row_lo * shape.blocklength,
                        row_hi * shape.blocklength,
                        row_lo,
                        row_hi,
                    )
                )
                i += 1
            return frags
        units = self.units
        assert units is not None
        # accumulate units until the fragment budget is reached
        csum = np.cumsum(units.lens)
        i = 0
        unit_lo = 0
        while unit_lo < units.count:
            base = csum[unit_lo - 1] if unit_lo else 0
            target = base + frag_bytes
            unit_hi = int(np.searchsorted(csum, target, side="left")) + 1
            unit_hi = min(unit_hi, units.count)
            lo, hi = units.packed_range(unit_lo, unit_hi)
            frags.append(Fragment(i, lo, hi, unit_lo, unit_hi))
            unit_lo = unit_hi
            i += 1
        return frags

    def range_fragment(self, index: int, lo: int, hi: int) -> Fragment:
        """Fragment for an externally chosen packed byte range [lo, hi).

        Used when the *peer* dictates fragment boundaries (the receiver-
        driven protocols): the unit range is the units overlapping the
        byte range, so edge units may be counted fully — a conservative
        sliver of extra kernel time.
        """
        if not (0 <= lo <= hi <= self.total_bytes):
            raise ValueError(f"range [{lo}, {hi}) outside packed stream")
        if self.uses_vector_kernel:
            bl = max(1, self.vector_shape.blocklength)
            return Fragment(index, lo, hi, lo // bl, -(-hi // bl))
        units = self.units
        assert units is not None
        if lo == hi:
            return Fragment(index, lo, hi, 0, 0)
        unit_lo = int(np.searchsorted(units.dst_disps, lo, side="right")) - 1
        unit_lo = max(0, unit_lo)
        unit_hi = int(np.searchsorted(units.dst_disps, hi, side="left"))
        return Fragment(index, lo, hi, unit_lo, unit_hi)

    def single_fragment(self) -> Fragment:
        """One fragment covering the whole packed stream."""
        n_units = (
            self.vector_shape.count if self.uses_vector_kernel else self.units.count
        )
        return Fragment(0, 0, self.total_bytes, 0, n_units)

    # -- preparation (CPU stage) -----------------------------------------------
    def _prep_needed(self, frag: Fragment) -> int:
        """Units still unprepared in [0, frag.unit_hi)."""
        if self.uses_vector_kernel or self._prep_charged:
            return 0
        return max(0, frag.unit_hi - self._prepped_units)

    def prep_time(self, n_units: int) -> float:
        """CPU time to emit ``n_units`` CUDA_DEVs (stage-1 walk)."""
        if n_units <= 0:
            return 0.0
        p = self.gpu.params
        units = self.units
        assert units is not None
        devs_per_unit = self.dt.spans_for_count(self.count).count / max(
            1, units.count
        )
        return n_units * (p.dev_prep_per_unit + devs_per_unit * p.dev_prep_per_dev)

    def prepare(self, frag: Fragment) -> Optional[Future]:
        """Charge CPU prep + descriptor upload for the fragment, if needed.

        The cuda_dev_dist upload (24 B/unit) rides an async staging path,
        so it is charged as time on the preparing CPU rather than as a
        full-overhead PCIe operation — descriptors are 3 orders of
        magnitude smaller than the data they describe.
        """
        n = self._prep_needed(frag)
        if n == 0:
            return None
        self._prepped_units = frag.unit_hi
        node = self.gpu.node
        upload = (n * 24) / self.gpu.h2d_link.bandwidth
        cost = self.prep_time(n) + upload
        self.engine._m_prep.observe(cost)
        if self._tune_key is not None:
            # DEV preparation is gather-plan overhead the learned cost
            # must carry (zero bytes: pure seconds against the key)
            self.engine.tuner.observe_plan(self._tune_key, self.plan, cost, 0)
        self._prep_fut = node.cpu_prep_engine.transfer(
            0, extra_overhead=cost, label="dev-prep"
        )
        return self._prep_fut

    # -- kernel (GPU stage) ------------------------------------------------------
    def kernel_stats(self, frag: Fragment) -> KernelStats:
        """Cost-model stats for one fragment's kernel launch."""
        if self.uses_vector_kernel:
            shape = self.vector_shape
            assert shape is not None
            # fractional rows: a fragment may cover part of a huge row
            # (e.g. a contiguous type is one row of the whole message)
            rows = (frag.hi - frag.lo) / max(1, shape.blocklength)
            return vector_kernel_stats(
                self.gpu,
                shape,
                rows=rows,
                grid_blocks=self.options.grid_blocks,
            )
        return dev_kernel_stats(
            self.gpu,
            self.units,
            frag.unit_lo,
            frag.unit_hi,
            grid_blocks=self.options.grid_blocks,
        )

    def _move(self, frag: Fragment, contig: Buffer) -> None:
        """The actual byte movement for the fragment (at kernel completion)."""
        if self.direction != "pack" and _san.MEM is not None:
            # an unpack kernel reads the contiguous source; flag segments
            # nothing ever filled (checked before .bytes marks them valid)
            _san.MEM.check_read(
                contig, 0, frag.nbytes, what=f"unpack-kernel[{frag.index}]"
            )
        view = contig.bytes
        if self.direction == "pack":
            self.convertor.pack_range(view, frag.lo, frag.hi)
        else:
            self.convertor.unpack_range(view, frag.lo, frag.hi)

    def _user_hull(self, frag: Fragment):
        """Byte hull of the user-buffer ranges a fragment's kernel touches
        (race-detector bookkeeping; conservative, clamped to the buffer)."""
        if frag.unit_hi <= frag.unit_lo:
            return None
        if self.uses_vector_kernel:
            shape = self.vector_shape
            a = shape.first_disp + frag.unit_lo * shape.stride
            b = shape.first_disp + (frag.unit_hi - 1) * shape.stride
            lo, hi = min(a, b), max(a, b) + shape.blocklength
        else:
            units = self.units
            src = units.src_disps[frag.unit_lo : frag.unit_hi]
            lens = units.lens[frag.unit_lo : frag.unit_hi]
            lo = int(src.min())
            hi = int((src + lens).max())
        lo = max(0, min(lo, self.user_buf.nbytes))
        hi = max(lo, min(hi, self.user_buf.nbytes))
        if hi <= lo:
            return None
        return (self.user_buf, lo, hi)

    def run_kernel(
        self,
        frag: Fragment,
        contig: Buffer,
        stream: Optional[Stream] = None,
    ) -> Future:
        """Launch the pack/unpack kernel for one fragment.

        ``contig`` holds exactly this fragment's packed bytes.  If it is
        zero-copy-mapped host memory (or a peer GPU's memory), the kernel
        streams over PCIe: duration is clamped by the link and the link is
        co-occupied.
        """
        if contig.nbytes < frag.nbytes:
            raise ValueError("contiguous buffer smaller than fragment")
        stats = self.kernel_stats(frag)
        stream = stream or self.stream
        duration = stats.total_time
        co_links = []
        link = self._remote_link(contig)
        if link is not None:
            # kernels reaching a peer GPU's memory issue latency-bound
            # PCIe transactions and under-utilize the wire; zero-copy to
            # mapped *host* memory streams at full rate (write-combining)
            eff = 1.0 if contig.is_host else (
                self.gpu.node.params.p2p_kernel_efficiency
                if self.gpu.node is not None
                else 1.0
            )
            wire = link.overhead + frag.nbytes / (link.bandwidth * eff)
            duration = max(duration, wire) + link.latency
            co_links.append(link)
        else:
            # purely in-device kernels share the GPU's DRAM with every
            # other stream (two ranks on one GPU contend realistically)
            co_links.append(self.gpu.copy_engine)
        self.engine._m_kernel.observe(duration)
        self.engine._m_fragments.inc()
        self.engine._m_bytes.inc(frag.nbytes)
        if self._tune_key is not None:
            self.engine.tuner.observe_plan(
                self._tune_key, self.plan, duration, frag.nbytes
            )
        reads: tuple = ()
        writes: tuple = ()
        if _san.RACE is not None:
            hull = self._user_hull(frag)
            contig_rng = (contig, 0, frag.nbytes)
            if self.direction == "pack":
                reads = (hull,) if hull else ()
                writes = (contig_rng,)
            else:
                reads = (contig_rng,)
                writes = (hull,) if hull else ()
        return stream.enqueue(
            duration,
            fn=lambda: self._move(frag, contig),
            label=f"{self.direction}-kernel[{frag.index}]",
            co_links=co_links,
            nbytes=frag.nbytes,
            reads=reads,
            writes=writes,
        )

    def _remote_link(self, contig: Buffer):
        """PCIe link a kernel must stream over to reach its buffers.

        Either side may be remote: the contiguous (packed) buffer — the
        protocols' case — or the *user* layout buffer, which happens for
        one-sided operations where the origin's kernel scatters/gathers
        directly in a peer's mapped window.
        """
        link = self._link_for(contig)
        if link is not None:
            return link
        return self._link_for(self.user_buf)

    def _link_for(self, buf: Buffer):
        if buf.is_host:
            if buf is self.user_buf and not is_mapped_host(buf):
                # a host-resident *user* buffer is the CPU convertor's
                # business normally; a GPU kernel can only reach it mapped
                return None
            if is_mapped_host(buf):
                return (
                    self.gpu.d2h_link
                    if self.direction == "pack"
                    else self.gpu.h2d_link
                )
            raise ValueError(
                "kernel target is unmapped host memory; zero-copy requires "
                "map_host_buffer()"
            )
        peer = buf.device
        if peer is not None and peer is not self.gpu:
            link = self.gpu.p2p_links.get(peer.name)
            if link is None:
                raise ValueError(f"no P2P path {self.gpu.name} -> {peer.name}")
            return link
        return None

    def prepare_for(self, frag: Fragment) -> Optional[Future]:
        """Preparation future for a fragment honouring the pipeline option.

        With pipelining, only the units the fragment needs are converted;
        without it, the *entire* remaining datatype is converted up front
        ("the GPU idles when the CPU is preparing the CUDA DEVs array" —
        the non-pipelined curves of Fig 7).
        """
        if self._prep_needed(frag) == 0:
            # covered by an earlier prepare() -- which may still be in
            # flight when fragment chains run concurrently (the receiver
            # spawns one per arriving notification).  Skipping ahead of a
            # pending prep would enqueue this fragment's kernel before
            # fragment 0's, generating ACKs out of fragment order and
            # breaking the in-order assumption the non-reliable ring
            # slot-reuse fast path depends on.
            if self._prep_fut is not None and not self._prep_fut.done:
                return self._prep_fut
            return None
        if self.options.pipeline_prep:
            return self.prepare(frag)
        return self.prepare(self.single_fragment())

    def process_fragment(
        self,
        frag: Fragment,
        contig: Buffer,
        stream: Optional[Stream] = None,
    ):
        """Coroutine: prepare (if needed) then run the fragment's kernel."""
        prep = self.prepare_for(frag)
        if prep is not None:
            yield prep
        done = yield self.run_kernel(frag, contig, stream)
        return done

    def process_all(
        self,
        contig: Buffer,
        frag_bytes: Optional[int] = None,
        stream: Optional[Stream] = None,
    ):
        """Coroutine: pack/unpack the whole message into/from ``contig``.

        With ``frag_bytes`` the job is fragmented and the CPU preparation
        pipelines with kernel execution (prep of fragment *i+1* overlaps
        the kernel of fragment *i*, because kernels queue on the stream
        while the coroutine immediately continues preparing).
        """
        if contig.nbytes < self.total_bytes:
            raise ValueError("contiguous buffer smaller than the message")
        frags = (
            [self.single_fragment()]
            if frag_bytes is None
            else self.fragments(frag_bytes)
        )
        kernel_futs = []
        for frag in frags:
            prep = self.prepare_for(frag)
            if prep is not None:
                yield prep
            kernel_futs.append(
                self.run_kernel(frag, contig[frag.lo : frag.hi], stream)
            )
        if kernel_futs:
            yield all_of(self.gpu.sim, kernel_futs)
        return self.total_bytes


class GpuDatatypeEngine:
    """Per-GPU facade: builds :class:`PackJob` objects and owns the cache."""

    def __init__(
        self,
        gpu: Gpu,
        cache: Optional[DevCache] = None,
        stream_name: str = "dtengine",
        metrics: Optional[MetricsRegistry] = None,
        tuner=None,
    ) -> None:
        if gpu.node is None:
            raise ValueError("GPU must be attached to a node")
        self.gpu = gpu
        #: optional :class:`repro.tune.Autotuner` consulted per PackJob
        self.tuner = tuner
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry().scoped("engine.")
        )
        self.cache = cache or DevCache(gpu, metrics=self.metrics.scoped("cache."))
        self.stream = gpu.stream(stream_name)
        self._m_jobs = self.metrics.counter("jobs")
        self._m_fragments = self.metrics.counter("fragments")
        self._m_bytes = self.metrics.counter("bytes_packed")
        self._m_prep = self.metrics.timer("prep_seconds")
        self._m_kernel = self.metrics.timer("kernel_seconds")
        #: jobs per selected pack plan (canonical-form cost-model output)
        self._m_plans = {p: self.metrics.counter(f"plan.{p}") for p in GPU_PLANS}

    def stats(self) -> EngineStats:
        """Structured totals for the two pipeline stages plus the cache."""
        return EngineStats(
            jobs=self._m_jobs.value,
            fragments=self._m_fragments.value,
            prep_s=self._m_prep.seconds,
            kernel_s=self._m_kernel.seconds,
            bytes_packed=self._m_bytes.value,
            cache=self.cache.stats(),
            plans={p: c.value for p, c in self._m_plans.items()},
        )

    def reset_counters(self) -> None:
        """Zero the engine's and cache's counters (cache entries stay)."""
        for m in (
            self._m_jobs,
            self._m_fragments,
            self._m_bytes,
            self._m_prep,
            self._m_kernel,
            *self._m_plans.values(),
        ):
            m.reset()
        self.cache.reset_counters()

    def pack_job(
        self,
        dt: Datatype,
        count: int,
        user_buf: Buffer,
        options: Optional[EngineOptions] = None,
    ) -> PackJob:
        """Build a pack job for (datatype, count, user buffer)."""
        self._m_jobs.inc()
        return PackJob(self, dt, count, user_buf, "pack", options or EngineOptions())

    def unpack_job(
        self,
        dt: Datatype,
        count: int,
        user_buf: Buffer,
        options: Optional[EngineOptions] = None,
    ) -> PackJob:
        """Build an unpack job for (datatype, count, user buffer)."""
        self._m_jobs.inc()
        return PackJob(
            self, dt, count, user_buf, "unpack", options or EngineOptions()
        )

    def warm_cache(self, dt: Datatype, count: int, unit_size: Optional[int] = None):
        """Precompute and cache the CUDA_DEV array for a datatype."""
        s = unit_size or self.gpu.params.dev_unit_size
        return self.cache.put(dt, count, s)
