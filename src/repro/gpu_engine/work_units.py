"""CUDA_DEV work units: equal-size slices of DEVs.

"Each DEV is divided into several cuda_dev_dist of the same size S plus
a residue if needed" (Section 3.2).  Units are what the GPU kernel's
grid-stride loop consumes; they are at most ``S`` bytes, cover every DEV
exactly, and inherit the DEV's relative-displacement reusability.

The split is fully vectorized — a transpose datatype with millions of
single-element DEVs costs a few NumPy ops, which is itself the simulated
counterpart of the paper's observation that the CPU-side conversion is
"sequential" and worth pipelining/caching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu_engine.dev import DevList
from repro.obs import phases as _phases

__all__ = ["WorkUnits", "split_units"]

#: bytes per cuda_dev_dist entry: three 8-byte fields (Figure 3)
UNIT_DESCRIPTOR_BYTES = 24


@dataclass(frozen=True)
class WorkUnits:
    """Parallel arrays of <src_disp, dst_disp, length<=S> work units."""

    src_disps: np.ndarray
    dst_disps: np.ndarray
    lens: np.ndarray
    unit_size: int  # the S this split used

    @property
    def count(self) -> int:
        return int(self.lens.size)

    @property
    def total_bytes(self) -> int:
        return int(self.lens.sum()) if self.count else 0

    @property
    def descriptor_bytes(self) -> int:
        """Size of the cuda_dev_dist array shipped to the GPU."""
        return self.count * UNIT_DESCRIPTOR_BYTES

    def slice(self, lo: int, hi: int) -> "WorkUnits":
        """Units [lo, hi) — used for per-fragment kernel launches."""
        return WorkUnits(
            self.src_disps[lo:hi],
            self.dst_disps[lo:hi],
            self.lens[lo:hi],
            self.unit_size,
        )

    def packed_range(self, lo: int, hi: int) -> tuple[int, int]:
        """Packed-stream byte range covered by units [lo, hi).

        An empty range (``lo == hi``) is a zero-length slice at the
        position unit ``lo`` would start.  Inverted or out-of-bounds
        ranges raise — a negative ``lo`` would otherwise index from the
        end of the array and silently return another unit's offsets.
        """
        if lo < 0 or hi < lo or hi > self.count:
            raise IndexError(
                f"unit range [{lo}, {hi}) invalid for {self.count} units"
            )
        if lo == hi:
            start = int(self.dst_disps[lo]) if lo < self.count else self.total_bytes
            return start, start
        return (
            int(self.dst_disps[lo]),
            int(self.dst_disps[hi - 1] + self.lens[hi - 1]),
        )

    def __repr__(self) -> str:
        return (
            f"WorkUnits(count={self.count}, S={self.unit_size}, "
            f"bytes={self.total_bytes})"
        )


def split_units(devs: DevList, unit_size: int) -> WorkUnits:
    """Split every DEV into ceil(len/S) units of at most ``S`` bytes."""
    if unit_size <= 0:
        raise ValueError("unit_size must be positive")
    with _phases.measure(_phases.UNIT_SPLIT):
        lens = devs.lens
        n = devs.count
        if n == 0:
            z = np.empty(0, dtype=np.int64)
            return WorkUnits(z, z, z, unit_size)
        counts = -(-lens // unit_size)
        total = int(counts.sum())
        dev_id = np.repeat(np.arange(n, dtype=np.int64), counts)
        first = np.cumsum(counts) - counts
        ramp = np.arange(total, dtype=np.int64) - np.repeat(first, counts)
        off = ramp * unit_size
        u_src = devs.src_disps[dev_id] + off
        u_dst = devs.dst_disps[dev_id] + off
        u_len = np.minimum(unit_size, lens[dev_id] - off)
        return WorkUnits(u_src, u_dst, u_len, unit_size)
