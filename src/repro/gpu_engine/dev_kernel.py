"""Generic DEV pack/unpack kernel (Section 3.2).

One kernel launch consumes a range of CUDA_DEV work units: "once the array
of CUDA_DEVs is generated, it is copied into device memory and the
corresponding GPU kernel is launched.  When a CUDA block finishes its
work, it would jump N (total number of CUDA blocks) on the CUDA_DEVs array
to retrieve its next unit of work."

The cost model (in :meth:`repro.hw.gpu.Gpu.dev_kernel_stats`) charges each
unit in whole block iterations, which is where the triangular matrix's
~80 %-of-peak occupancy penalty comes from, and charges a per-unit fetch
overhead that the grid amortizes.
"""

from __future__ import annotations

from repro.gpu_engine.work_units import WorkUnits
from repro.hw.gpu import Gpu, KernelStats

__all__ = ["dev_kernel_stats"]


def dev_kernel_stats(
    gpu: Gpu,
    units: WorkUnits,
    unit_lo: int = 0,
    unit_hi: int | None = None,
    grid_blocks: int | None = None,
) -> KernelStats:
    """Kernel cost for processing units [unit_lo, unit_hi)."""
    hi = units.count if unit_hi is None else unit_hi
    return gpu.dev_kernel_stats(units.lens[unit_lo:hi], grid_blocks=grid_blocks)
