"""The GPU datatype engine — the paper's primary contribution.

Reproduces the two-stage design of Section 3:

1. **CPU stage** (:mod:`repro.gpu_engine.dev`,
   :mod:`repro.gpu_engine.work_units`): walk the datatype and emit
   *Datatype Engine Vectors* — ``<source displacement, destination
   displacement, length>`` tuples — then split them into equal-size
   CUDA_DEV work units (S = 1/2/4 KB) balanced across warps.
2. **GPU stage** (:mod:`repro.gpu_engine.dev_kernel`,
   :mod:`repro.gpu_engine.vector_kernel`): a single kernel consumes the
   unit array with a grid-stride loop; a specialized kernel handles
   uniform vector types straight from (blocklength, stride, count).

Unit arrays depend only on the datatype shape, so they are cacheable
(:mod:`repro.gpu_engine.cache`), and their preparation is pipelined with
kernel execution (:class:`repro.gpu_engine.engine.GpuDatatypeEngine`) —
the two effects Fig 7 quantifies.
"""

from repro.gpu_engine.dev import DevList, to_devs
from repro.gpu_engine.work_units import WorkUnits, split_units
from repro.gpu_engine.cache import DevCache
from repro.gpu_engine.engine import EngineOptions, GpuDatatypeEngine, PackJob

__all__ = [
    "DevList",
    "to_devs",
    "WorkUnits",
    "split_units",
    "DevCache",
    "EngineOptions",
    "GpuDatatypeEngine",
    "PackJob",
]
