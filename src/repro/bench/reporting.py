"""Plain-text tables and series for the benchmark reports.

The harnesses print the same rows/series the paper's figures plot; the
EXPERIMENTS.md paper-vs-measured records are generated from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["Table", "Series", "fmt_time", "fmt_bytes", "fmt_bw"]


def fmt_time(seconds: float) -> str:
    """Human-readable seconds (us/ms/s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (B/KiB/MiB/GiB)."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GiB"


def fmt_bw(bytes_per_s: float) -> str:
    """Bandwidth in decimal GB/s."""
    return f"{bytes_per_s / 1e9:.2f}GB/s"


@dataclass
class Table:
    """A fixed-column text table."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        """Append one row (must match the header arity)."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _cell(c: Any) -> str:
        """One cell as text: missing values dash out, floats use ``%g``."""
        if c is None:
            return "-"
        if isinstance(c, str):
            return c
        if isinstance(c, bool):  # bool is an int; don't let it reach %g
            return str(c)
        if isinstance(c, float):
            return f"{c:g}"
        return str(c)

    def render(self) -> str:
        """Return the table as aligned plain text."""
        cells = [[str(h) for h in self.headers]] + [
            [self._cell(c) for c in r] for r in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.headers))]
        lines = [f"== {self.title} =="]
        for k, row in enumerate(cells):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if k == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table with a leading blank line."""
        print()
        print(self.render())


@dataclass
class Series:
    """An x-axis plus named y-columns — one paper figure's data."""

    title: str
    x_name: str
    columns: Sequence[str]
    x: list[Any] = field(default_factory=list)
    ys: dict[str, list[Optional[float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for c in self.columns:
            self.ys.setdefault(c, [])

    def add(self, x: Any, **values: Optional[float]) -> None:
        """Append one x point with its named column values."""
        self.x.append(x)
        for c in self.columns:
            self.ys[c].append(values.get(c))

    def column(self, name: str) -> list[Optional[float]]:
        """The values of one named column, in x order."""
        return self.ys[name]

    def to_table(self, fmt=fmt_time) -> Table:
        """Render the series as a :class:`Table` using ``fmt`` per cell."""
        t = Table(self.title, [self.x_name, *self.columns])
        for i, x in enumerate(self.x):
            row = [x]
            for c in self.columns:
                v = self.ys[c][i]
                row.append("-" if v is None else fmt(v))
            t.add(*row)
        return t

    def show(self, fmt=fmt_time) -> None:
        """Print the series as a formatted table."""
        self.to_table(fmt).show()

    def ratio(self, a: str, b: str) -> list[Optional[float]]:
        """Per-x ratio column a / column b.

        Missing values, zero denominators and NaNs on either side all
        yield ``None`` — a ratio either means something or is absent,
        it never raises ``ZeroDivisionError`` or propagates NaN into a
        report.
        """
        out: list[Optional[float]] = []
        for va, vb in zip(self.ys[a], self.ys[b]):
            if va is None or vb is None or vb == 0 or va != va or vb != vb:
                out.append(None)
            else:
                out.append(va / vb)
        return out
