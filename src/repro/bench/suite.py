"""Benchmark suite runner: ``python -m repro.bench --suite``.

Runs every registered scenario (:mod:`repro.bench.scenarios`) under the
active size profile and writes one schema-versioned ``BENCH_<label>.json``
trajectory point.  Per scenario the document records:

* ``metrics`` — the simulated times/bandwidths plus WorldStats health
  numbers (cache hit rate, overlap fraction), all off the deterministic
  virtual clock and therefore machine-independent;
* ``phases`` — harness wall-clock split into the hot CPU phases
  (``dev_build``: typemap -> DEV emission, ``unit_split``: DEV ->
  work-unit expansion, ``sim_run``: the event loop) via
  :mod:`repro.obs.phases`;
* ``wall_seconds`` — total harness wall-clock for the scenario.

The companion regression gate lives in :mod:`repro.bench.regress`.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Optional

from repro.bench.profiles import Profile
from repro.bench.scenarios import SCENARIOS
from repro.obs import phases

__all__ = ["SCHEMA", "default_label", "run_suite", "write_suite_trace"]

#: schema tag written into (and required from) every suite document
SCHEMA = "repro-bench/1"


def default_label() -> str:
    """Label for the trajectory point: env var, then git hash, then local.

    ``REPRO_BENCH_LABEL`` wins so CI can stamp run numbers; otherwise the
    short commit hash identifies the code the numbers belong to.
    """
    env = os.environ.get("REPRO_BENCH_LABEL")
    if env:
        return _safe_label(env)
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "local"


def _safe_label(label: str) -> str:
    """File-name-safe version of a user-supplied label."""
    return "".join(c if (c.isalnum() or c in "._-") else "-" for c in label)


def _provenance() -> dict:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }


def run_suite(
    profile: Profile,
    names: Optional[list[str]] = None,
    label: Optional[str] = None,
    verbose: bool = True,
) -> dict:
    """Run the scenarios and return the suite document (not yet written).

    ``names`` restricts the run to a subset (unknown names raise
    ``ValueError`` before anything runs); default is every registered
    scenario in registration order.
    """
    if names:
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            raise ValueError(
                f"unknown scenario(s): {', '.join(unknown)}; "
                f"known: {', '.join(SCENARIOS)}"
            )
        selected = [n for n in SCENARIOS if n in set(names)]
    else:
        selected = list(SCENARIOS)

    doc: dict = {
        "schema": SCHEMA,
        "label": _safe_label(label) if label else default_label(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "profile": profile.name,
        "provenance": _provenance(),
        "scenarios": {},
    }
    t_suite = time.perf_counter()
    for name in selected:
        if verbose:
            print(f"[suite] {name} ({profile.name}) ...", flush=True)
        t0 = time.perf_counter()
        with phases.collect() as timer:
            metrics = SCENARIOS[name](profile)
        wall = time.perf_counter() - t0
        doc["scenarios"][name] = {
            "metrics": {k: float(v) for k, v in metrics.items()},
            "phases": timer.to_dict(),
            "wall_seconds": wall,
        }
        if verbose:
            print(f"[suite] {name}: {len(metrics)} metrics, {wall:.2f}s wall")
    doc["harness"] = {"wall_seconds": time.perf_counter() - t_suite}
    return doc


def write_suite_json(doc: dict, path: Optional[str] = None) -> str:
    """Write the suite document; default path is ``BENCH_<label>.json``."""
    if path is None:
        path = f"BENCH_{doc['label']}.json"
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def write_suite_trace(path: str) -> str:
    """Export one traced ping-pong as a Chrome/Perfetto JSON artifact.

    CI uploads this next to the ``BENCH_*.json`` so a regression report
    comes with a timeline to look at, not just a number that moved.
    """
    from repro.bench.harness import make_env, matrix_buffers, pingpong_stats
    from repro.mpi.config import MpiConfig
    from repro.sim.trace import save_chrome_trace
    from repro.workloads.matrices import MatrixWorkload

    env = make_env("sm-2gpu", config=MpiConfig(frag_bytes=1 << 20), trace=True)
    wl = MatrixWorkload.triangular(512)
    b0, b1 = matrix_buffers(env, wl)
    _, ws = pingpong_stats(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=1)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    save_chrome_trace(env.cluster.tracer, path, metrics=ws)
    return path
