"""Benchmark size profiles: the full paper sweeps vs a quick CI cut.

The figure sweeps in ``benchmarks/`` and the suite scenarios in
:mod:`repro.bench.scenarios` share one size knob: a :class:`Profile`.
``full`` reproduces the paper's matrix sizes; ``quick`` shrinks sweeps
so the whole suite finishes in well under two minutes — small enough
for a per-push CI gate, large enough that every code path (DEV build,
unit split, cache, pipeline, every protocol) still runs.

The profile is picked once per process from the ``REPRO_BENCH_PROFILE``
environment variable (or the ``--quick``/``--profile`` CLI flags, which
just set it before anything reads it).  Call sites write::

    SIZES = PROFILE.pick([512, 1024, 2048, 4096], [512, 1024])

Tight paper-band assertions that only hold at full sizes are gated on
``PROFILE.is_full``; the qualitative orderings (ours beats MVAPICH,
caching beats pipelining, ...) hold under both profiles and stay
unconditional.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TypeVar

__all__ = ["Profile", "FULL", "QUICK", "PROFILES", "get", "current"]

T = TypeVar("T")

#: environment variable the profile is read from
ENV_VAR = "REPRO_BENCH_PROFILE"


@dataclass(frozen=True)
class Profile:
    """A named size profile for benchmark sweeps."""

    name: str

    @property
    def is_full(self) -> bool:
        return self.name == "full"

    def pick(self, full: T, quick: T) -> T:
        """The ``full`` value under the full profile, else ``quick``."""
        return full if self.is_full else quick


FULL = Profile("full")
QUICK = Profile("quick")
PROFILES = {p.name: p for p in (FULL, QUICK)}


def get(name: str) -> Profile:
    """Look up a profile by name (raises ``ValueError`` on unknown)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; expected one of {sorted(PROFILES)}"
        ) from None


def current() -> Profile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default: full)."""
    return get(os.environ.get(ENV_VAR, "full"))
