"""World-scale benchmark: events/sec and wall clock at 256/1k/4k ranks.

The figure benchmarks exercise two-rank protocol depth; this module
exercises *width* — hundreds to thousands of ranks doing a mixed
pingpong + collective load over host memory, with ``transfer_log`` off
(the counters-only observability mode built for scale runs).  It is the
scenario the simulator-core fast paths (array-backed heap, eager
process start, callback-chained eager protocol) are accountable to.

Metric naming follows the regression-gate convention
(:mod:`repro.bench.regress`):

* plain names (``events``, ``transfers``, ``sim_elapsed_s``,
  ``peak_queue_depth``) are deterministic — identical on every machine,
  held to the tight tolerance;
* ``*_wall_s`` is host wall clock — gated loosely, regressions only;
* ``*_per_wall_s`` is wall-clock throughput — gated loosely, lower
  bound only (a faster machine must never fail the gate).
"""

from __future__ import annotations

from repro.datatype import BYTE, contiguous
from repro.hw.node import Cluster
from repro.mpi.collectives import bcast
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld

__all__ = ["RANKS_PER_NODE", "world_scale_metrics"]

#: ranks packed per simulated node (dense host-only placement)
RANKS_PER_NODE = 32


def world_scale_metrics(
    ranks: int,
    iters: int = 8,
    payload: int = 1024,
) -> dict[str, float]:
    """Run the mixed load on a ``ranks``-wide world; flat metric dict.

    The load: every even/odd pair ping-pongs ``payload`` host-contiguous
    bytes for ``iters`` rounds (2 messages per rank per round), then the
    whole world joins one binomial ``bcast`` from rank 0 — so the run
    mixes pairwise traffic with a world-wide dependency tree, and a
    matching/ordering bug at width shows up as a hang or a wrong count,
    not just a slow number.
    """
    if ranks % (2 * RANKS_PER_NODE):
        raise ValueError(
            f"ranks must be a multiple of {2 * RANKS_PER_NODE}, got {ranks}"
        )
    cluster = Cluster(n_nodes=ranks // RANKS_PER_NODE, gpus_per_node=0)
    placements = [(r // RANKS_PER_NODE, None) for r in range(ranks)]
    world = MpiWorld(cluster, placements, MpiConfig(transfer_log=False))
    dt = contiguous(payload, BYTE).commit()

    def prog(ctx):
        peer = ctx.rank ^ 1
        buf = ctx.host_alloc(payload)
        for _ in range(iters):
            if ctx.rank & 1 == 0:
                yield ctx.send(buf, dt, 1, dest=peer, tag=7)
                yield ctx.recv(buf, dt, 1, source=peer, tag=9)
            else:
                yield ctx.recv(buf, dt, 1, source=peer, tag=7)
                yield ctx.send(buf, dt, 1, dest=peer, tag=9)
        yield from bcast(ctx, buf, dt, 1, root=0)

    world.run({r: prog for r in range(ranks)})
    ws = world.stats()
    transfers = float(sum(ws.by_protocol.values()))
    wall = ws.run_wall_s
    return {
        # deterministic (tight gate)
        "events": float(ws.events_processed),
        "transfers": transfers,
        "peak_queue_depth": float(ws.peak_queue_depth),
        "sim_elapsed_s": ws.sim_elapsed_s,
        # machine-dependent (loose gates, by naming convention)
        "run_wall_s": wall,
        "events_per_wall_s": ws.events_per_wall_s,
        "transfers_per_wall_s": transfers / wall if wall > 0 else 0.0,
    }
