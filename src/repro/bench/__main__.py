"""CLI report: regenerate the paper's evaluation tables.

Usage::

    python -m repro.bench                 # every figure
    python -m repro.bench fig6 fig10      # a subset
    python -m repro.bench --list

    # benchmark suite + perf-regression gate (BENCH_<label>.json)
    python -m repro.bench --suite --quick --check benchmarks/baseline.json
    python -m repro.bench --suite --quick --update-baseline
    python -m repro.bench --list-scenarios

    # cProfile one suite scenario (writes a sorted-by-cumtime report)
    python -m repro.bench --profile world_scale --quick

For the full per-figure sweeps with assertions, run
``pytest benchmarks/ --benchmark-only -s`` instead.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.figures import FIGURES, run_figure
from repro.bench.reporting import fmt_time

#: where --update-baseline writes, and the conventional --check target
BASELINE_PATH = os.path.join("benchmarks", "baseline.json")


def run_suite_cli(parser: argparse.ArgumentParser, args) -> int:
    """Handle ``--suite``: run, write JSON (+ trace), optionally gate."""
    from repro.bench import profiles, regress
    from repro.bench.suite import run_suite, write_suite_json, write_suite_trace

    if args.quick and args.profile and args.profile != "quick":
        parser.error(f"--quick conflicts with --profile {args.profile}")
    if args.quick:
        profile = profiles.QUICK
    elif args.profile:
        try:
            profile = profiles.get(args.profile)
        except ValueError as err:
            parser.error(str(err))
    else:
        profile = profiles.current()

    try:
        doc = run_suite(profile, names=args.scenario, label=args.label)
    except ValueError as err:  # unknown scenario names
        parser.error(str(err))
    path = write_suite_json(doc, args.json)
    print(f"suite: wrote {path} "
          f"({len(doc['scenarios'])} scenarios, profile={profile.name}, "
          f"{doc['harness']['wall_seconds']:.1f}s wall)")

    if args.trace_out:
        trace = write_suite_trace(
            os.path.join(args.trace_out, "suite-pingpong.trace.json")
        )
        print(f"suite: wrote {trace}")

    if args.update_baseline:
        out = dict(doc)
        try:
            # a *missing* baseline is a fresh start; a *malformed* one is
            # a real problem the refresh must not paper over silently
            prev = regress.load_baseline(BASELINE_PATH)
        except OSError:
            prev = {}
        except ValueError as err:
            print(f"error: refusing to overwrite a malformed baseline: {err}",
                  file=sys.stderr)
            return 1
        # hand-tuned per-metric tolerances survive a refresh — they
        # encode review decisions, not measurements
        if prev.get("tolerances"):
            out["tolerances"] = prev["tolerances"]
        write_suite_json(out, BASELINE_PATH)
        print(f"suite: updated {BASELINE_PATH}")

    if args.check:
        # a --scenario subset is gated against just those baseline records
        return regress.run_check(doc, args.check, only=args.scenario)
    return 0


def run_profile_cli(parser: argparse.ArgumentParser, args) -> int:
    """Handle ``--profile <scenario>`` without ``--suite``: cProfile it.

    Runs one registered suite scenario under :mod:`cProfile` and writes
    a sorted-by-cumulative-time report (the artifact CI uploads next to
    the ``BENCH_*.json``), echoing the hottest frames to stdout.
    """
    import cProfile
    import io
    import pstats
    import time

    from repro.bench import profiles
    from repro.bench.scenarios import SCENARIOS

    name = args.profile
    if name not in SCENARIOS:
        parser.error(
            f"--profile without --suite expects a scenario name; "
            f"unknown scenario {name!r} (known: {', '.join(SCENARIOS)})"
        )
    size = profiles.QUICK if args.quick else profiles.current()
    prof = cProfile.Profile()
    t0 = time.perf_counter()
    prof.enable()
    metrics = SCENARIOS[name](size)
    prof.disable()
    wall = time.perf_counter() - t0

    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(60)
    header = (
        f"# cProfile: scenario={name} profile={size.name} "
        f"wall={wall:.2f}s metrics={len(metrics)}\n"
    )
    path = args.profile_out or f"PROFILE_{name}.txt"
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(header)
        fh.write(buf.getvalue())
    print(header, end="")
    print("\n".join(buf.getvalue().splitlines()[:25]))
    print(f"profile: wrote {path}")
    return 0


def main(argv=None) -> int:
    """Entry point: run the requested figures and print tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the HPDC'16 GPU-datatype evaluation tables "
        "on the simulated cluster.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"which figures to run (default: all of {', '.join(FIGURES)})",
    )
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--suite",
        action="store_true",
        help="run the benchmark suite and write a BENCH_<label>.json "
        "trajectory point (simulated metrics + harness phase timings)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --suite: use the quick (CI) size profile",
    )
    parser.add_argument(
        "--profile",
        metavar="NAME",
        default=None,
        help="with --suite: explicit profile name (full|quick); "
        "default comes from REPRO_BENCH_PROFILE, else full. "
        "Without --suite: cProfile the named suite *scenario* and "
        "write a sorted-by-cumtime report (see --profile-out)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="with --profile <scenario> (no --suite): where to write "
        "the cProfile report (default: PROFILE_<scenario>.txt)",
    )
    parser.add_argument(
        "--scenario",
        metavar="NAME",
        action="append",
        default=None,
        help="with --suite: run only this scenario (repeatable)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the suite scenario names and exit",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="with --suite: where to write the suite document "
        "(default: BENCH_<label>.json in the current directory)",
    )
    parser.add_argument(
        "--label",
        metavar="LABEL",
        default=None,
        help="with --suite: trajectory label (default: REPRO_BENCH_LABEL, "
        "else the short git hash)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="with --suite: compare the run against a baseline JSON and "
        "exit nonzero on regression",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"with --suite: also write the run to {BASELINE_PATH}",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run one traced transfer per protocol and verify the "
        "stats/trace plumbing instead of regenerating figures",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="with --smoke or --suite: directory to keep the "
        "Chrome/Perfetto trace JSON files in (--smoke default: a "
        "temporary directory; --suite default: no trace)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        nargs="?",
        const="",
        default=None,
        help="with --smoke: run the chaos leg instead — inject "
        "seeded faults (drop/dup/delay/ipc-open/staging) and assert "
        "byte-exact delivery; SPEC is 'key=value,...' overriding the "
        "chaos defaults, e.g. 'seed=3,am_drop=0.2'",
    )
    parser.add_argument(
        "--sanitize",
        metavar="WHICH",
        nargs="?",
        const="all",
        default=None,
        help="install the repro.sanitize checkers for the run "
        "(WHICH: 'all' or a csv of mem,race,dev; default all); any "
        "violation aborts with a non-zero exit.  Off by default — "
        "benchmark numbers are only meaningful uninstrumented",
    )
    args = parser.parse_args(argv)

    if args.sanitize is not None:
        from repro import sanitize
        from repro.sanitize.options import SanitizeOptions

        sanitize.enable(SanitizeOptions.parse(args.sanitize))

    if args.list_scenarios:
        from repro.bench.scenarios import scenario_names

        for name in scenario_names():
            print(name)
        return 0

    if args.smoke:
        if args.faults is not None:
            from repro.bench.smoke import run_faults_smoke

            return run_faults_smoke(args.faults)
        from repro.bench.smoke import run_smoke

        return run_smoke(trace_dir=args.trace_out)

    if args.faults is not None:
        parser.error("--faults requires --smoke")

    if args.suite:
        return run_suite_cli(parser, args)
    if args.profile:
        return run_profile_cli(parser, args)
    for flag in ("quick", "scenario", "json", "label", "check"):
        if getattr(args, flag):
            parser.error(f"--{flag.replace('_', '-')} requires --suite")
    if args.profile_out:
        parser.error("--profile-out requires --profile <scenario>")
    if args.update_baseline:
        parser.error("--update-baseline requires --suite")

    if args.list:
        for name in FIGURES:
            print(name)
        return 0

    names = args.figures or list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    for name in names:
        for series in run_figure(name):
            fmt = fmt_time
            if "GB/s" in series.title:
                fmt = lambda v: f"{v / 1e9:.2f}"  # noqa: E731
            elif "energy" in series.title:
                fmt = lambda v: f"{v:.2f}"  # pre-scaled columns # noqa: E731
            series.show(fmt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
