"""CLI report: regenerate the paper's evaluation tables.

Usage::

    python -m repro.bench                 # every figure
    python -m repro.bench fig6 fig10      # a subset
    python -m repro.bench --list

For the full per-figure sweeps with assertions, run
``pytest benchmarks/ --benchmark-only -s`` instead.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import FIGURES, run_figure
from repro.bench.reporting import fmt_time


def main(argv=None) -> int:
    """Entry point: run the requested figures and print tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the HPDC'16 GPU-datatype evaluation tables "
        "on the simulated cluster.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"which figures to run (default: all of {', '.join(FIGURES)})",
    )
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run one traced transfer per protocol and verify the "
        "stats/trace plumbing instead of regenerating figures",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="with --smoke: directory to keep the Chrome/Perfetto "
        "trace JSON files in (default: a temporary directory)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        nargs="?",
        const="",
        default=None,
        help="with --smoke: run the chaos leg instead — inject "
        "seeded faults (drop/dup/delay/ipc-open/staging) and assert "
        "byte-exact delivery; SPEC is 'key=value,...' overriding the "
        "chaos defaults, e.g. 'seed=3,am_drop=0.2'",
    )
    parser.add_argument(
        "--sanitize",
        metavar="WHICH",
        nargs="?",
        const="all",
        default=None,
        help="install the repro.sanitize checkers for the run "
        "(WHICH: 'all' or a csv of mem,race,dev; default all); any "
        "violation aborts with a non-zero exit.  Off by default — "
        "benchmark numbers are only meaningful uninstrumented",
    )
    args = parser.parse_args(argv)

    if args.sanitize is not None:
        from repro import sanitize
        from repro.sanitize.options import SanitizeOptions

        sanitize.enable(SanitizeOptions.parse(args.sanitize))

    if args.smoke:
        if args.faults is not None:
            from repro.bench.smoke import run_faults_smoke

            return run_faults_smoke(args.faults)
        from repro.bench.smoke import run_smoke

        return run_smoke(trace_dir=args.trace_out)

    if args.faults is not None:
        parser.error("--faults requires --smoke")

    if args.list:
        for name in FIGURES:
            print(name)
        return 0

    names = args.figures or list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    for name in names:
        for series in run_figure(name):
            fmt = fmt_time
            if "GB/s" in series.title:
                fmt = lambda v: f"{v / 1e9:.2f}"  # noqa: E731
            elif "energy" in series.title:
                fmt = lambda v: f"{v:.2f}"  # pre-scaled columns # noqa: E731
            series.show(fmt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
