"""Self-contained figure generators for the CLI report.

Compact versions of the sweeps under ``benchmarks/`` (which additionally
assert the paper's claims); ``python -m repro.bench`` runs these and
prints every table.  Sizes are chosen to finish in seconds while showing
each figure's shape.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import (
    make_env,
    matrix_buffers,
    mvapich_pingpong,
    pingpong,
)
from repro.bench.reporting import Series
from repro.gpu_engine import EngineOptions
from repro.mpi.config import MpiConfig
from repro.workloads.matrices import (
    MatrixWorkload,
    lower_triangular_type,
    stair_triangular_type,
    submatrix_type,
)

__all__ = ["FIGURES", "run_figure", "run_all"]


def fig6(sizes=(512, 1024, 2048, 4096)) -> Series:
    """GPU memory bandwidth of packing kernels (GB/s)."""
    series = Series(
        "Fig 6: pack-kernel bandwidth (GB/s)",
        "N",
        ["V", "T", "T-stair", "C-cudaMemcpy"],
    )
    for n in sizes:
        env = make_env("sm-1gpu")
        proc = env.world.procs[0]
        sim = env.sim
        out = {}
        cases = {
            "V": submatrix_type(n, n + 512),
            "T": lower_triangular_type(n),
            "T-stair": stair_triangular_type(n, 512),
        }
        for name, dt in cases.items():
            src = proc.ctx.malloc(max(dt.extent, 256))
            dst = proc.ctx.malloc(dt.size)
            proc.engine.warm_cache(dt, 1)
            job = proc.engine.pack_job(dt, 1, src, EngineOptions(use_cache=True))
            t0 = sim.now
            sim.run_until_complete(sim.spawn(job.process_all(dst)))
            out[name] = dt.size / (sim.now - t0)
            src.free()
            dst.free()
        a = proc.ctx.malloc(n * n * 8)
        b = proc.ctx.malloc(n * n * 8)
        t0 = sim.now
        sim.run_until_complete(env.gpu0.memcpy_d2d(b, a))
        out["C-cudaMemcpy"] = n * n * 8 / (sim.now - t0)
        series.add(n, **out)
    return series


def fig9(sizes=(512, 1024, 2048)) -> Series:
    """PCI-E bandwidth of the two-GPU ping-pong (GB/s)."""
    series = Series("Fig 9: ping-pong PCIe bandwidth (GB/s)", "N", ["V", "T", "C"])
    for n in sizes:
        row = {}
        for name, wl in (
            ("V", MatrixWorkload.submatrix(n, n + 512)),
            ("T", MatrixWorkload.triangular(n)),
            ("C", MatrixWorkload.contiguous_matrix(n)),
        ):
            env = make_env("sm-2gpu")
            b0, b1 = matrix_buffers(env, wl)
            t = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)
            row[name] = 2 * wl.payload_bytes / t
        series.add(n, **row)
    return series


def fig10(sizes=(512, 1024, 2048)) -> list[Series]:
    """Ping-pong vs the MVAPICH-style baseline in all three environments."""
    out = []
    for kind, label in (
        ("sm-1gpu", "Fig 10a (SM, one GPU)"),
        ("sm-2gpu", "Fig 10b (SM, two GPUs)"),
        ("ib", "Fig 10c (InfiniBand)"),
    ):
        series = Series(label, "N", ["V", "V-MVAPICH", "T", "T-MVAPICH"])
        for n in sizes:
            row = {}
            for name, wl in (
                ("V", MatrixWorkload.submatrix(n, n + 512)),
                ("T", MatrixWorkload.triangular(n)),
            ):
                env = make_env(kind)
                b0, b1 = matrix_buffers(env, wl)
                row[name] = pingpong(
                    env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2
                )
                env2 = make_env(kind)
                c0, c1 = matrix_buffers(env2, wl)
                row[f"{name}-MVAPICH"] = mvapich_pingpong(
                    env2, c0, wl.datatype, 1, c1, wl.datatype, 1, iters=1
                )
            series.add(n, **row)
        out.append(series)
    return out


def sec53(grids=(1, 2, 4, 8, 16, 32, 64, 120), n=2048) -> Series:
    """S5.3: ping-pong time vs CUDA blocks granted to the engine."""
    series = Series(
        f"S5.3: ping-pong (V, N={n}) vs CUDA blocks granted", "blocks", ["time"]
    )
    for g in grids:
        cfg = MpiConfig(engine=EngineOptions(grid_blocks=g))
        env = make_env("sm-2gpu", config=cfg)
        wl = MatrixWorkload.submatrix(n, n + 512)
        b0, b1 = matrix_buffers(env, wl)
        series.add(g, time=pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, 2))
    return series


def sec54(levels=(0.0, 0.25, 0.5, 0.75, 0.9, 0.97), n=2048) -> Series:
    """S5.4: ping-pong time under a co-running GPU application."""
    series = Series(
        f"S5.4: ping-pong (V, N={n}) vs co-running GPU load", "load", ["time"]
    )
    for lvl in levels:
        env = make_env("sm-2gpu")
        for gpu in (env.gpu0, env.gpu1):
            gpu.contention = lvl
        wl = MatrixWorkload.submatrix(n, n + 512)
        b0, b1 = matrix_buffers(env, wl)
        series.add(
            f"{int(lvl * 100)}%",
            time=pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, 2),
        )
    return series


def fig7(sizes=(1024, 2048, 4096)) -> Series:
    """Pack+unpack engine time: pipeline and cache effects (bypass CPU)."""
    series = Series(
        "Fig 7a: pack+unpack, bypass CPU",
        "N",
        ["V-d2d", "T-d2d", "T-d2d-pipeline", "T-d2d-cached"],
    )
    for n in sizes:
        env = make_env("sm-1gpu")
        proc = env.world.procs[0]
        sim = env.sim
        V = submatrix_type(n, n + 512)
        T = lower_triangular_type(n)
        srcV = proc.ctx.malloc(V.extent)
        srcT = proc.ctx.malloc(n * n * 8)
        dst = proc.ctx.malloc(V.size)

        def roundtrip(dt, src, options, frag=None, warm=False):
            if warm:
                proc.engine.warm_cache(dt, 1)

            def run():
                pj = proc.engine.pack_job(dt, 1, src, options)
                yield from pj.process_all(dst, frag)
                uj = proc.engine.unpack_job(dt, 1, src, options)
                yield from uj.process_all(dst, frag)

            t0 = sim.now
            sim.run_until_complete(sim.spawn(run()))
            return sim.now - t0

        no_pipe = EngineOptions(use_cache=False, pipeline_prep=False)
        pipe = EngineOptions(use_cache=False, pipeline_prep=True)
        cached = EngineOptions(use_cache=True)
        series.add(
            n,
            **{
                "V-d2d": roundtrip(V, srcV, no_pipe),
                "T-d2d": roundtrip(T, srcT, no_pipe),
                "T-d2d-pipeline": roundtrip(T, srcT, pipe, frag=4 << 20),
                "T-d2d-cached": roundtrip(T, srcT, cached, warm=True),
            },
        )
    return series


def fig12(sizes=(256, 512, 1024)) -> Series:
    """Matrix-transpose ping-pong, ours vs the MVAPICH-style baseline."""
    import numpy as np

    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE
    from repro.workloads.matrices import transpose_type

    series = Series(
        "Fig 12: matrix transpose ping-pong (SM, two GPUs)",
        "N",
        ["transpose", "transpose-MVAPICH"],
    )
    for n in sizes:
        C = contiguous(n * n, DOUBLE).commit()
        TR = transpose_type(n)
        env = make_env("sm-2gpu")
        b0 = env.world.procs[0].ctx.malloc(n * n * 8)
        b0.write(np.random.default_rng(0).random(n * n))
        b1 = env.world.procs[1].ctx.malloc(n * n * 8)
        ours = pingpong(env, b0, C, 1, b1, TR, 1, iters=2)
        env2 = make_env("sm-2gpu")
        c0 = env2.world.procs[0].ctx.malloc(n * n * 8)
        c1 = env2.world.procs[1].ctx.malloc(n * n * 8)
        theirs = mvapich_pingpong(env2, c0, C, 1, c1, TR, 1, iters=1)
        series.add(n, transpose=ours, **{"transpose-MVAPICH": theirs})
    return series


def energy(n: int = 1024) -> Series:
    """Extension: dynamic energy of a V transfer, GPU engine vs CPU path."""
    import numpy as np

    from repro.hw.energy import energy_report
    from repro.hw.node import Cluster
    from repro.mpi.world import MpiWorld

    series = Series(
        f"Extension: dynamic energy of one V transfer (N={n})",
        "path",
        ["millijoules", "time_ms"],
    )
    for label, placements in (
        ("GPU engine (2 GPUs)", [(0, 0), (0, 1)]),
        ("CPU datatype engine", [(0, None), (0, None)]),
    ):
        cluster = Cluster(1, 2, trace=True)
        world = MpiWorld(cluster, placements)
        ld = n + 512
        V = submatrix_type(n, ld)
        bufs = []
        for rank in range(2):
            proc = world.procs[rank]
            buf = (
                proc.ctx.malloc(ld * ld * 8)
                if proc.gpu is not None
                else proc.node.host_memory.alloc(ld * ld * 8)
            )
            bufs.append(buf)
        bufs[0].write(np.random.default_rng(0).random(ld * ld))

        def s(mpi):
            yield mpi.send(bufs[0], V, 1, dest=1, tag=0)

        def r(mpi):
            yield mpi.recv(bufs[1], V, 1, source=0, tag=0)

        world.run([s, r])
        cluster.tracer.clear()
        elapsed = world.run([s, r])
        rep = energy_report(cluster.tracer)
        series.add(
            label,
            millijoules=rep.total_joules * 1e3,
            time_ms=elapsed * 1e3,
        )
    return series


def fig8(block_sizes=(64, 96, 192, 512, 4096), n_blocks=8192) -> Series:
    """Vector kernel vs cudaMemcpy2D (the 64 B alignment sawtooth)."""
    from repro.cuda.runtime import CudaContext, MemcpyKind
    from repro.cuda.uma import map_host_buffer
    from repro.datatype.ddt import hvector
    from repro.datatype.primitives import BYTE

    series = Series(
        f"Fig 8: vector pack vs cudaMemcpy2D ({n_blocks} blocks)",
        "blockB",
        ["kernel-d2d", "mcp2d-d2d", "kernel-d2h(cpy)", "mcp2d-d2h"],
    )
    for bs in block_sizes:
        env = make_env("sm-1gpu")
        proc = env.world.procs[0]
        gpu = env.gpu0
        ctx = CudaContext(gpu)
        sim = env.sim
        stride = bs + 64
        dt = hvector(n_blocks, bs, stride, BYTE).commit()
        src = ctx.malloc(n_blocks * stride)
        dst = ctx.malloc(n_blocks * bs)
        hdst = proc.node.host_memory.alloc(n_blocks * bs)
        map_host_buffer(hdst, gpu)
        proc.engine.warm_cache(dt, 1)

        def timed(target):
            t0 = sim.now
            if hasattr(target, "add_callback"):
                sim.run_until_complete(target)
            else:
                sim.run_until_complete(sim.spawn(target))
            return sim.now - t0

        row = {
            "kernel-d2d": timed(
                proc.engine.pack_job(dt, 1, src, EngineOptions()).process_all(dst)
            ),
            "kernel-d2h(cpy)": timed(
                proc.engine.pack_job(dt, 1, src, EngineOptions()).process_all(hdst)
            ),
            "mcp2d-d2d": timed(
                ctx.memcpy2d(dst, bs, src, stride, bs, n_blocks, MemcpyKind.D2D)
            ),
            "mcp2d-d2h": timed(
                ctx.memcpy2d(hdst, bs, src, stride, bs, n_blocks, MemcpyKind.D2H)
            ),
        }
        series.add(bs, **row)
    return series


def fig11(sizes=(512, 1024, 2048)) -> Series:
    """Vector <-> contiguous (FFT reshape) ping-pong vs the baseline."""
    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE

    series = Series(
        "Fig 11 (SM): vector<->contiguous ping-pong",
        "N",
        ["V<->C", "V<->C-MVAPICH"],
    )
    for n in sizes:
        wl = MatrixWorkload.submatrix(n, n + 512)
        C = contiguous(n * n, DOUBLE).commit()
        env = make_env("sm-2gpu")
        b0, b1 = matrix_buffers(env, wl)
        ours = pingpong(env, b0, wl.datatype, 1, b1, C, 1, iters=2)
        env2 = make_env("sm-2gpu")
        c0, c1 = matrix_buffers(env2, wl)
        theirs = mvapich_pingpong(env2, c0, wl.datatype, 1, c1, C, 1, iters=1)
        series.add(n, **{"V<->C": ours, "V<->C-MVAPICH": theirs})
    return series


FIGURES: dict[str, Callable] = {
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "sec5.3": sec53,
    "sec5.4": sec54,
    "energy": energy,
}


def run_figure(name: str) -> list[Series]:
    """Run one named figure; returns its series list."""
    result = FIGURES[name]()
    return result if isinstance(result, list) else [result]


def run_all() -> list[Series]:
    """Run every registered figure."""
    out: list[Series] = []
    for name in FIGURES:
        out.extend(run_figure(name))
    return out
