"""Benchmark environments and measurement drivers.

``make_env`` builds the paper's four configurations (Section 5.2):

* ``sm-1gpu`` — two ranks sharing one GPU on one node;
* ``sm-2gpu`` — two ranks on different GPUs of one node;
* ``ib``      — two ranks on different nodes over FDR InfiniBand;
* ``cpu``     — two host-only ranks (the CPU datatype engine baseline).

``pingpong`` measures steady state: a warm-up iteration first pays the
one-time costs real benchmarks also amortize (IPC registration, CUDA_DEV
cache fill, gather-index build), then the measured iterations run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.mvapich import MvapichLikeTransfer
from repro.datatype.ddt import Datatype
from repro.hw.memory import Buffer
from repro.hw.node import Cluster
from repro.hw.params import SystemParams
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import MatrixWorkload

__all__ = [
    "BenchEnv",
    "make_env",
    "matrix_buffers",
    "pingpong",
    "pingpong_stats",
    "one_way",
    "mvapich_pingpong",
    "pack_time",
    "alltoall_times",
]


@dataclass
class BenchEnv:
    kind: str
    cluster: Cluster
    world: MpiWorld

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def gpu0(self):
        return self.world.procs[0].gpu

    @property
    def gpu1(self):
        return self.world.procs[1].gpu


def make_env(
    kind: str,
    config: Optional[MpiConfig] = None,
    params: Optional[SystemParams] = None,
    trace: bool = False,
    sim=None,
) -> BenchEnv:
    """Build one of the paper's four benchmark environments.

    ``sim`` optionally supplies the simulator (the schedule explorer
    injects a seeded perturbed one); default is a fresh clock per env.
    """
    if kind == "sm-1gpu":
        cluster = Cluster(1, 1, params=params, trace=trace, sim=sim)
        placements = [(0, 0), (0, 0)]
    elif kind == "sm-2gpu":
        cluster = Cluster(1, 2, params=params, trace=trace, sim=sim)
        placements = [(0, 0), (0, 1)]
    elif kind == "ib":
        cluster = Cluster(2, 1, params=params, trace=trace, sim=sim)
        placements = [(0, 0), (1, 0)]
    elif kind == "cpu":
        cluster = Cluster(1, 1, params=params, trace=trace, sim=sim)
        placements = [(0, None), (0, None)]
    else:
        raise ValueError(f"unknown environment {kind!r}")
    world = MpiWorld(cluster, placements, config=config)
    return BenchEnv(kind, cluster, world)


def matrix_buffers(
    env: BenchEnv, workload: MatrixWorkload, seed: int = 42
) -> tuple[Buffer, Buffer]:
    """Allocate the underlying matrices on both ranks; rank 0 gets data."""
    nbytes = workload.footprint_bytes
    bufs = []
    for rank in (0, 1):
        proc = env.world.procs[rank]
        if proc.gpu is not None:
            buf = proc.ctx.malloc(nbytes, label=f"{workload.name}-r{rank}")
        else:
            buf = proc.node.host_memory.alloc(nbytes, label=f"{workload.name}-r{rank}")
        bufs.append(buf)
    rng = np.random.default_rng(seed)
    bufs[0].write(rng.random(nbytes // 8))
    return bufs[0], bufs[1]


def _pingpong_programs(b0, d0, c0, b1, d1, c1, iters: int):
    def rank0(mpi):
        for _ in range(iters):
            yield mpi.send(b0, d0, c0, dest=1, tag=1)
            yield mpi.recv(b0, d0, c0, source=1, tag=2)

    def rank1(mpi):
        for _ in range(iters):
            yield mpi.recv(b1, d1, c1, source=0, tag=1)
            yield mpi.send(b1, d1, c1, dest=0, tag=2)

    return [rank0, rank1]


def pingpong(
    env: BenchEnv,
    b0: Buffer,
    d0: Datatype,
    c0: int,
    b1: Buffer,
    d1: Datatype,
    c1: int,
    iters: int = 3,
    warmup: int = 1,
) -> float:
    """Steady-state round-trip time (seconds per iteration)."""
    if warmup:
        env.world.run(_pingpong_programs(b0, d0, c0, b1, d1, c1, warmup))
    elapsed = env.world.run(_pingpong_programs(b0, d0, c0, b1, d1, c1, iters))
    return elapsed / iters


def pingpong_stats(
    env: BenchEnv,
    b0: Buffer,
    d0: Datatype,
    c0: int,
    b1: Buffer,
    d1: Datatype,
    c1: int,
    iters: int = 3,
    warmup: int = 1,
):
    """Steady-state ping-pong plus the run's :class:`WorldStats`.

    The warm-up window is dropped from the stats (``reset_stats``), so
    the returned record describes exactly the measured iterations —
    benchmarks read cache hit rate, overlap fraction and per-resource
    busy time off this one object instead of poking protocol internals.
    Returns ``(seconds_per_iteration, WorldStats)``.
    """
    if warmup:
        env.world.run(_pingpong_programs(b0, d0, c0, b1, d1, c1, warmup))
    env.world.reset_stats()
    elapsed = env.world.run(_pingpong_programs(b0, d0, c0, b1, d1, c1, iters))
    return elapsed / iters, env.world.stats()


def one_way(
    env: BenchEnv,
    b0: Buffer,
    d0: Datatype,
    c0: int,
    b1: Buffer,
    d1: Datatype,
    c1: int,
    warmup: int = 1,
) -> float:
    """Steady-state single-transfer time (seconds)."""

    def programs():
        def rank0(mpi):
            yield mpi.send(b0, d0, c0, dest=1, tag=3)

        def rank1(mpi):
            yield mpi.recv(b1, d1, c1, source=0, tag=3)

        return [rank0, rank1]

    for _ in range(warmup):
        env.world.run(programs())
    return env.world.run(programs())


def mvapich_pingpong(
    env: BenchEnv,
    b0: Buffer,
    d0: Datatype,
    c0: int,
    b1: Buffer,
    d1: Datatype,
    c1: int,
    iters: int = 2,
    warmup: int = 1,
) -> float:
    """Round-trip time under the MVAPICH-style baseline."""
    fwd = MvapichLikeTransfer(env.world.procs[0], env.world.procs[1])
    back = MvapichLikeTransfer(env.world.procs[1], env.world.procs[0])
    sim = env.sim

    def round_trip():
        yield from fwd.transfer(b0, d0, c0, b1, d1, c1)
        yield from back.transfer(b1, d1, c1, b0, d0, c0)

    for _ in range(warmup):
        sim.run_until_complete(sim.spawn(round_trip(), label="mvapich-warm"))
    t0 = sim.now
    for _ in range(iters):
        sim.run_until_complete(sim.spawn(round_trip(), label="mvapich-pp"))
    return (sim.now - t0) / iters


def pack_time(
    env: BenchEnv,
    dt: Datatype,
    count: int,
    src: Buffer,
    dst: Buffer,
    options=None,
    frag_bytes: Optional[int] = None,
    warmup: int = 0,
) -> float:
    """GPU-engine pack (or unpack) time into ``dst`` on rank 0's GPU."""
    proc = env.world.procs[0]
    sim = env.sim
    for _ in range(warmup):
        job = proc.engine.pack_job(dt, count, src, options)
        sim.run_until_complete(sim.spawn(job.process_all(dst, frag_bytes)))
    job = proc.engine.pack_job(dt, count, src, options)
    t0 = sim.now
    sim.run_until_complete(sim.spawn(job.process_all(dst, frag_bytes)))
    return sim.now - t0


def alltoall_times(
    block_bytes: int,
    algorithms,
    n_nodes: int = 2,
    gpus_per_node: int = 2,
    iters: int = 2,
    config: Optional[MpiConfig] = None,
    tuner=None,
) -> dict[str, float]:
    """Simulated seconds per collective algorithm for one alltoall.

    Each algorithm gets a fresh ``n_nodes x gpus_per_node`` world with
    device buffers of ``block_bytes`` per peer; the first iteration is a
    warm-up (IPC registration, staging-pool fill) and the remaining
    ``iters`` are averaged.  Keys are ``CollAlgorithm`` values.  An
    explicit ``tuner`` is shared by every world (training harnesses
    accumulate one table across algorithm sweeps).
    """
    from repro.datatype.primitives import DOUBLE
    from repro.datatype.ddt import contiguous
    from repro.mpi.collectives import alltoall

    size = n_nodes * gpus_per_node
    count = max(block_bytes // DOUBLE.size, 1)
    out: dict[str, float] = {}
    for algo in algorithms:
        dt = contiguous(count, DOUBLE).commit()
        cluster = Cluster(n_nodes, gpus_per_node)
        placements = [
            (n, g) for n in range(n_nodes) for g in range(gpus_per_node)
        ]
        world = MpiWorld(cluster, placements, config=config, tuner=tuner)
        rng = np.random.default_rng(13)
        sendbufs, recvbufs = [], []
        for r in range(size):
            ctx = world.procs[r].ctx
            srow, rrow = [], []
            for _ in range(size):
                sb = ctx.malloc(dt.size)
                sb.bytes[:] = rng.integers(0, 255, dt.size, dtype=np.uint8)
                rb = ctx.malloc(dt.size)
                rb.fill(0)
                srow.append(sb)
                rrow.append(rb)
            sendbufs.append(srow)
            recvbufs.append(rrow)
        marks: list[float] = []

        def program(rank):
            def run(mpi):
                for _ in range(iters + 1):
                    yield from alltoall(
                        mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                        algorithm=algo,
                    )
                    yield mpi.barrier()
                    if rank == 0:
                        marks.append(mpi.sim.now)
            return run

        world.run({r: program(r) for r in range(size)})
        out[getattr(algo, "value", str(algo))] = (
            (marks[-1] - marks[0]) / iters
        )
    return out
