"""Shared benchmark scenarios: one measurement core per paper figure.

Two consumers share this module:

* the pytest figure suites under ``benchmarks/`` import the measurement
  cores (``kernel_bandwidths``, ``engine_times``, ...) and wrap them in
  sweeps + paper-band assertions;
* the suite runner (``python -m repro.bench --suite``, see
  :mod:`repro.bench.suite`) runs the registered *scenarios* — thin
  wrappers that size a core from the active :class:`~repro.bench.profiles.Profile`
  and flatten the results into ``{metric_name: float}`` for the
  ``BENCH_*.json`` trajectory and the regression gate.

Every metric here is **simulated** time/bandwidth off the deterministic
virtual clock, so identical code produces bit-identical metrics on any
machine — which is what lets the regression gate use tight tolerances.
Scenarios that drive the full MPI ping-pong also report WorldStats-derived
health numbers (CUDA_DEV cache hit rate, pack/wire overlap fraction).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.bench.harness import (
    make_env,
    matrix_buffers,
    mvapich_pingpong,
    pingpong,
    pingpong_stats,
)
from repro.bench.profiles import Profile
from repro.bench.reporting import Series
from repro.cuda.runtime import CudaContext, MemcpyKind
from repro.cuda.uma import map_host_buffer
from repro.datatype.ddt import contiguous, hvector
from repro.datatype.primitives import BYTE, DOUBLE
from repro.gpu_engine import EngineOptions
from repro.mpi.config import MpiConfig
from repro.workloads.matrices import (
    MatrixWorkload,
    lower_triangular_type,
    stair_triangular_type,
    submatrix_type,
    transpose_type,
)

__all__ = [
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "run_scenario",
    # measurement cores shared with benchmarks/
    "kernel_bandwidths",
    "engine_times",
    "memcpy2d_sweep",
    "pcie_bandwidths",
    "pingpong_times",
    "vc_times",
    "transpose_times",
    "pingpong_with_grid",
    "saturation_grid",
    "pingpong_under_contention",
    "pipeline_pingpong",
]

#: stair size = threads per CUDA block, as the paper prescribes (Fig 6)
STAIR_NB = 512
#: pipeline fragment used by the Fig 7 staged paths
PIPE_FRAG = 4 << 20
#: gap between blocks in the Fig 8 vector sweep
STRIDE_PAD = 64


# ---------------------------------------------------------------------------
# measurement cores (shared with benchmarks/test_fig*.py)
# ---------------------------------------------------------------------------


def kernel_bandwidths(n: int) -> dict[str, float]:
    """Fig 6: effective pack bandwidth (payload / kernel time) per layout."""
    env = make_env("sm-1gpu")
    gpu = env.gpu0
    proc = env.world.procs[0]
    sim = env.sim
    ld = n + 512

    out: dict[str, float] = {}
    cases = {
        "V": submatrix_type(n, ld),
        "T": lower_triangular_type(n),
        "T-stair": stair_triangular_type(n, STAIR_NB),
    }
    for name, dt in cases.items():
        src = proc.ctx.malloc(max(dt.extent, ld * ld * 8))
        dst = proc.ctx.malloc(dt.size)
        # measure the kernel alone: CUDA_DEVs cached (prep excluded), one
        # launch — this is what Fig 6 isolates
        proc.engine.warm_cache(dt, 1)
        job = proc.engine.pack_job(dt, 1, src, EngineOptions(use_cache=True))
        t0 = sim.now
        sim.run_until_complete(sim.spawn(job.process_all(dst)))
        out[name] = dt.size / (sim.now - t0)
        src.free()
        dst.free()

    # the reference: contiguous cudaMemcpy of the V payload size
    nbytes = n * n * 8
    a = proc.ctx.malloc(nbytes)
    b = proc.ctx.malloc(nbytes)
    t0 = sim.now
    sim.run_until_complete(gpu.memcpy_d2d(b, a))
    out["C-cudaMemcpy"] = nbytes / (sim.now - t0)
    return out


def _roundtrip(env, dt, src, options, frag, dst, warm_cache=False):
    """pack into dst then unpack back; returns simulated seconds."""
    proc = env.world.procs[0]
    sim = env.sim
    if warm_cache:
        proc.engine.warm_cache(dt, 1)

    def run():
        pj = proc.engine.pack_job(dt, 1, src, options)
        yield from pj.process_all(dst, frag)
        uj = proc.engine.unpack_job(dt, 1, src, options)
        yield from uj.process_all(dst, frag)

    t0 = sim.now
    sim.run_until_complete(sim.spawn(run()))
    return sim.now - t0


def engine_times(n: int) -> dict[str, float]:
    """Fig 7: pack+unpack time of the GPU datatype engine per path."""
    env = make_env("sm-1gpu")
    proc = env.world.procs[0]
    gpu = env.gpu0
    ld = n + 512
    V = submatrix_type(n, ld)
    T = lower_triangular_type(n)
    srcV = proc.ctx.malloc(ld * ld * 8)
    srcT = proc.ctx.malloc(n * n * 8)
    out: dict[str, float] = {}

    # ---- bypass CPU: pack into a GPU buffer -------------------------------
    dgpu = proc.ctx.malloc(V.size)
    no_cache = EngineOptions(use_cache=False, pipeline_prep=False)
    pipe = EngineOptions(use_cache=False, pipeline_prep=True)
    cached = EngineOptions(use_cache=True)
    out["V-d2d"] = _roundtrip(env, V, srcV, no_cache, None, dgpu)
    out["T-d2d"] = _roundtrip(env, T, srcT, no_cache, None, dgpu)
    out["T-d2d-pipeline"] = _roundtrip(env, T, srcT, pipe, PIPE_FRAG, dgpu)
    out["T-d2d-cached"] = _roundtrip(env, T, srcT, cached, None, dgpu, warm_cache=True)

    # ---- through host memory ------------------------------------------------
    # d2d2h: pack to GPU staging then explicit D2H (and H2D + unpack back)
    sim = env.sim
    hbuf = proc.node.host_memory.alloc(V.size)

    def d2d2h(dt, src, options, warm):
        if warm:
            proc.engine.warm_cache(dt, 1)

        def run():
            pj = proc.engine.pack_job(dt, 1, src, options)
            yield from pj.process_all(dgpu, PIPE_FRAG)
            yield gpu.memcpy_d2h(hbuf[: dt.size], dgpu[: dt.size])
            yield gpu.memcpy_h2d(dgpu[: dt.size], hbuf[: dt.size])
            uj = proc.engine.unpack_job(dt, 1, src, options)
            yield from uj.process_all(dgpu, PIPE_FRAG)

        t0 = sim.now
        sim.run_until_complete(sim.spawn(run()))
        return sim.now - t0

    out["V-d2d2h"] = d2d2h(V, srcV, pipe, warm=False)
    out["T-d2d2h-cached"] = d2d2h(T, srcT, cached, warm=True)

    # cpy: zero-copy — the kernel streams over PCIe itself
    zbuf = proc.node.host_memory.alloc(V.size)
    map_host_buffer(zbuf, gpu)
    out["V-cpy"] = _roundtrip(env, V, srcV, pipe, PIPE_FRAG, zbuf)
    out["T-cpy-cached"] = _roundtrip(
        env, T, srcT, cached, PIPE_FRAG, zbuf, warm_cache=True
    )
    return out


def memcpy2d_sweep(
    n_blocks: int, block_sizes: Optional[list[int]] = None
) -> Series:
    """Fig 8: vector pack kernel vs ``cudaMemcpy2D`` over block sizes."""
    if block_sizes is None:
        block_sizes = [64, 96, 128, 192, 256, 448, 512, 1024, 4096]
    series = Series(
        f"Fig 8: vector pack vs cudaMemcpy2D, {n_blocks} blocks",
        "blockB",
        ["kernel-d2d", "mcp2d-d2d", "kernel-d2h(cpy)", "mcp2d-d2h", "mcp2d-d2d2h"],
    )
    for bs in block_sizes:
        env = make_env("sm-1gpu")
        proc = env.world.procs[0]
        gpu = env.gpu0
        ctx = CudaContext(gpu)
        sim = env.sim
        stride = bs + STRIDE_PAD
        dt = hvector(n_blocks, bs, stride, BYTE).commit()
        total = n_blocks * bs
        src = ctx.malloc(n_blocks * stride)
        dst = ctx.malloc(total)
        hdst = proc.node.host_memory.alloc(total)
        map_host_buffer(hdst, gpu)

        def timed(coro_or_fut):
            t0 = sim.now
            if hasattr(coro_or_fut, "add_callback"):
                sim.run_until_complete(coro_or_fut)
            else:
                sim.run_until_complete(sim.spawn(coro_or_fut))
            return sim.now - t0

        opts = EngineOptions(use_cache=True)
        proc.engine.warm_cache(dt, 1)
        job = proc.engine.pack_job(dt, 1, src, opts)
        kernel_d2d = timed(job.process_all(dst))
        job = proc.engine.pack_job(dt, 1, src, opts)
        kernel_d2h = timed(job.process_all(hdst))
        mcp_d2d = timed(
            ctx.memcpy2d(dst, bs, src, stride, bs, n_blocks, MemcpyKind.D2D)
        )
        mcp_d2h = timed(
            ctx.memcpy2d(hdst, bs, src, stride, bs, n_blocks, MemcpyKind.D2H)
        )

        # d2d2h: pack in-device with memcpy2d, then one contiguous D2H
        def d2d2h():
            yield ctx.memcpy2d(dst, bs, src, stride, bs, n_blocks, MemcpyKind.D2D)
            yield gpu.memcpy_d2h(hdst, dst)

        mcp_d2d2h = timed(d2d2h())
        series.add(
            bs,
            **{
                "kernel-d2d": kernel_d2d,
                "mcp2d-d2d": mcp_d2d,
                "kernel-d2h(cpy)": kernel_d2h,
                "mcp2d-d2h": mcp_d2h,
                "mcp2d-d2d2h": mcp_d2d2h,
            },
        )
    return series


def pcie_bandwidths(n: int) -> dict[str, float]:
    """Fig 9: PCIe bandwidth achieved by the two-GPU ping-pong per layout."""
    out: dict[str, float] = {}
    for name, wl in (
        ("V", MatrixWorkload.submatrix(n, n + 512)),
        ("T", MatrixWorkload.triangular(n)),
        ("C", MatrixWorkload.contiguous_matrix(n)),
    ):
        env = make_env("sm-2gpu")
        b0, b1 = matrix_buffers(env, wl)
        t = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)
        # ping-pong moves the payload twice per iteration
        out[name] = 2 * wl.payload_bytes / t
    return out


def pingpong_times(env_kind: str, n: int) -> dict[str, float]:
    """Fig 10: V/T ping-pong round-trip, ours vs the MVAPICH baseline."""
    out: dict[str, float] = {}
    for name, wl in (
        ("V", MatrixWorkload.submatrix(n, n + 512)),
        ("T", MatrixWorkload.triangular(n)),
    ):
        env = make_env(env_kind)
        b0, b1 = matrix_buffers(env, wl)
        out[name] = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)
        env2 = make_env(env_kind)
        c0, c1 = matrix_buffers(env2, wl)
        out[f"{name}-MVAPICH"] = mvapich_pingpong(
            env2, c0, wl.datatype, 1, c1, wl.datatype, 1, iters=1
        )
    return out


def vc_times(env_kind: str, n: int) -> dict[str, float]:
    """Fig 11: vector<->contiguous (FFT reshape) ping-pong, ours vs MVAPICH."""
    wl = MatrixWorkload.submatrix(n, n + 512)
    C = contiguous(n * n, DOUBLE).commit()
    out = {}
    env = make_env(env_kind)
    b0, b1 = matrix_buffers(env, wl)
    # rank 0: vector; rank 1: contiguous (only n*n*8 bytes are used)
    out["V<->C"] = pingpong(env, b0, wl.datatype, 1, b1, C, 1, iters=2)
    env2 = make_env(env_kind)
    c0, c1 = matrix_buffers(env2, wl)
    out["V<->C-MVAPICH"] = mvapich_pingpong(env2, c0, wl.datatype, 1, c1, C, 1, iters=1)
    return out


def transpose_times(env_kind: str, n: int) -> dict[str, float]:
    """Fig 12: contiguous->transpose ping-pong (N^2 single-element blocks).

    Verifies the transpose semantics on both implementations before
    reporting — a wrong answer must never look like a fast answer.
    """
    import numpy as np

    C = contiguous(n * n, DOUBLE).commit()
    TR = transpose_type(n)
    out = {}
    env = make_env(env_kind)
    p0, p1 = env.world.procs
    b0 = p0.ctx.malloc(n * n * 8)
    b0.write(np.random.default_rng(7).random(n * n))
    b1 = p1.ctx.malloc(n * n * 8)
    out["transpose"] = pingpong(env, b0, C, 1, b1, TR, 1, iters=2)
    a = b0.view("f8").reshape(n, n)
    b = b1.view("f8").reshape(n, n)
    assert np.array_equal(b, a.T), "transpose semantics broken"

    env2 = make_env(env_kind)
    q0, q1 = env2.world.procs
    c0 = q0.ctx.malloc(n * n * 8)
    c0.write(np.random.default_rng(8).random(n * n))
    c1 = q1.ctx.malloc(n * n * 8)
    out["transpose-MVAPICH"] = mvapich_pingpong(env2, c0, C, 1, c1, TR, 1, iters=1)
    a = c0.view("f8").reshape(n, n)
    b = c1.view("f8").reshape(n, n)
    assert np.array_equal(b, a.T), "MVAPICH transpose semantics broken"
    return out


def pingpong_with_grid(grid_blocks: int, n: int = 2048) -> float:
    """Section 5.3: two-GPU V ping-pong with a capped engine grid."""
    cfg = MpiConfig(engine=EngineOptions(grid_blocks=grid_blocks))
    env = make_env("sm-2gpu", config=cfg)
    wl = MatrixWorkload.submatrix(n, n + 512)
    b0, b1 = matrix_buffers(env, wl)
    return pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)


def saturation_grid(grids: list[int]) -> int:
    """Blocks needed for kernel bw to cross PCIe bw (model prediction)."""
    env = make_env("sm-2gpu")
    gpu = env.gpu0
    pcie = gpu.d2h_link.bandwidth
    for g in grids:
        if gpu.kernel_bandwidth(g) >= pcie:
            return g
    return grids[-1]


def pingpong_under_contention(level: float, n: int = 2048) -> float:
    """Section 5.4: two-GPU V ping-pong with a co-running app's GPU share."""
    env = make_env("sm-2gpu")
    for gpu in (env.gpu0, env.gpu1):
        gpu.contention = level
    wl = MatrixWorkload.submatrix(n, n + 512)
    b0, b1 = matrix_buffers(env, wl)
    return pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)


def pipeline_pingpong(
    frag_bytes: int,
    depth: int,
    env_kind: str = "sm-2gpu",
    n: int = 2048,
    contention: float = 0.0,
) -> float:
    """Pipeline ablation: V ping-pong with explicit fragment size / depth."""
    cfg = MpiConfig(frag_bytes=frag_bytes, pipeline_depth=depth)
    env = make_env(env_kind, config=cfg)
    if contention:
        for gpu in (env.gpu0, env.gpu1):
            gpu.contention = contention
    wl = MatrixWorkload.submatrix(n, n + 512)
    b0, b1 = matrix_buffers(env, wl)
    return pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)


# ---------------------------------------------------------------------------
# suite scenario registry
# ---------------------------------------------------------------------------

#: name -> scenario function (profile) -> flat {metric: float}
SCENARIOS: dict[str, Callable[[Profile], dict[str, float]]] = {}


def scenario(name: str):
    """Register a suite scenario under ``name`` (decorator)."""

    def deco(fn: Callable[[Profile], dict[str, float]]):
        SCENARIOS[name] = fn
        return fn

    return deco


def scenario_names() -> list[str]:
    """Registered scenario names, in registration (suite) order."""
    return list(SCENARIOS)


def run_scenario(name: str, profile: Profile) -> dict[str, float]:
    """Run one registered scenario; returns its flat metric mapping."""
    return SCENARIOS[name](profile)


def _slug(text: str) -> str:
    """Metric-name-safe version of a column label (``V<->C`` -> ``V_C``)."""
    out = []
    prev_us = False
    for ch in str(text):
        if ch.isalnum() or ch in ".":
            out.append(ch)
            prev_us = False
        elif not prev_us:
            out.append("_")
            prev_us = True
    return "".join(out).strip("_")


@scenario("fig6_kernel_bw")
def _fig6(profile: Profile) -> dict[str, float]:
    n = profile.pick(4096, 1024)
    bw = kernel_bandwidths(n)
    return {f"{_slug(k)}_bw": v for k, v in bw.items()}


@scenario("fig7_engine_time")
def _fig7(profile: Profile) -> dict[str, float]:
    n = profile.pick(4096, 1024)
    return {f"{_slug(k)}_s": v for k, v in engine_times(n).items()}


@scenario("fig8_memcpy2d")
def _fig8(profile: Profile) -> dict[str, float]:
    n_blocks = profile.pick(8192, 1024)
    sizes = profile.pick([64, 96, 192, 512, 4096], [96, 192, 4096])
    series = memcpy2d_sweep(n_blocks, sizes)
    out: dict[str, float] = {}
    for col in series.columns:
        for bs, v in zip(series.x, series.column(col)):
            out[f"{_slug(col)}_{bs}B_s"] = v
    return out


@scenario("fig9_pcie_bw")
def _fig9(profile: Profile) -> dict[str, float]:
    n = profile.pick(3072, 1024)
    return {f"{_slug(k)}_bw": v for k, v in pcie_bandwidths(n).items()}


@scenario("fig10_pingpong")
def _fig10(profile: Profile) -> dict[str, float]:
    n = profile.pick(2048, 1024)
    kinds = profile.pick(["sm-1gpu", "sm-2gpu", "ib"], ["sm-1gpu", "sm-2gpu"])
    out: dict[str, float] = {}
    for kind in kinds:
        for k, v in pingpong_times(kind, n).items():
            out[f"{_slug(kind)}_{_slug(k)}_s"] = v
    return out


@scenario("fig11_vector_contiguous")
def _fig11(profile: Profile) -> dict[str, float]:
    n = profile.pick(2048, 1024)
    kinds = profile.pick(["sm-2gpu", "ib"], ["sm-2gpu"])
    out: dict[str, float] = {}
    for kind in kinds:
        for k, v in vc_times(kind, n).items():
            out[f"{_slug(kind)}_{_slug(k)}_s"] = v
    return out


@scenario("fig12_transpose")
def _fig12(profile: Profile) -> dict[str, float]:
    n = profile.pick(1024, 512)
    kinds = profile.pick(["sm-2gpu", "ib"], ["sm-2gpu"])
    out: dict[str, float] = {}
    for kind in kinds:
        for k, v in transpose_times(kind, n).items():
            out[f"{_slug(kind)}_{_slug(k)}_s"] = v
    return out


@scenario("sec53_min_resources")
def _sec53(profile: Profile) -> dict[str, float]:
    grids = profile.pick([1, 2, 4, 8, 16, 32, 64, 120], [1, 8, 120])
    n = profile.pick(2048, 1024)
    out: dict[str, float] = {}
    for g in grids:
        out[f"grid{g}_s"] = pingpong_with_grid(g, n)
    out["saturation_blocks"] = float(saturation_grid(grids))
    return out


@scenario("sec54_contention")
def _sec54(profile: Profile) -> dict[str, float]:
    levels = profile.pick([0.0, 0.25, 0.5, 0.75, 0.9, 0.97], [0.0, 0.5, 0.97])
    n = profile.pick(2048, 1024)
    return {
        f"contention{int(lv * 100)}_s": pingpong_under_contention(lv, n)
        for lv in levels
    }


@scenario("ablation_pipeline")
def _pipeline(profile: Profile) -> dict[str, float]:
    n = profile.pick(2048, 1024)
    frags = profile.pick(
        [64 << 10, 256 << 10, 1 << 20, 4 << 20, 64 << 20],
        [64 << 10, 1 << 20, 64 << 20],
    )
    depths = profile.pick([1, 2, 4, 8], [1, 4])
    out: dict[str, float] = {}
    for f in frags:
        out[f"frag{f >> 10}KiB_s"] = pipeline_pingpong(f, 4, n=n)
    for d in depths:
        out[f"depth{d}_s"] = pipeline_pingpong(1 << 20, d, n=n)
    return out


@scenario("world_stats")
def _world_stats(profile: Profile) -> dict[str, float]:
    """Ping-pong the triangular type and report the WorldStats health row.

    The cache hit rate and pack/wire overlap fraction are the paper's two
    engine-health invariants: the warmup must fill the CUDA_DEV cache so
    the measured run hits it, and the fragment pipeline must overlap
    packing with the wire.  Both are deterministic, so the regression
    gate holds them to the tight tolerance.
    """
    n = profile.pick(2048, 1024)
    wl = MatrixWorkload.triangular(n)
    # tracing on: the overlap fraction is read off the cluster tracer
    env = make_env("sm-2gpu", config=MpiConfig(frag_bytes=1 << 20), trace=True)
    b0, b1 = matrix_buffers(env, wl)
    per_iter, ws = pingpong_stats(
        env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2
    )
    return {
        "T_pingpong_s": per_iter,
        "cache_hit_rate": ws.cache_hit_rate,
        "overlap_fraction": ws.pack_wire_overlap_fraction,
        "total_gbytes": ws.total_bytes / 1e9,
    }


@scenario("cache_reuse")
def _cache_reuse(profile: Profile) -> dict[str, float]:
    """Two tenants, structurally identical types: the cross-construction
    reuse the canonical-keyed DevCache exists for.

    Tenant 1 (COMM_WORLD) and tenant 2 (a dup'ed communicator) each
    build their *own* ``lower_triangular_type(n)`` — distinct objects,
    identical layout, exactly what two libraries in one application do.
    Under the old identity-based ``type_id`` key tenant 2 missed on
    every rank and silently re-paid the CUDA_DEV preparation; under the
    canonical key its misses are zero and its first iteration already
    runs at cached speed.
    """
    n = profile.pick(2048, 1024)
    env = make_env("sm-2gpu")
    world = env.world
    wl = MatrixWorkload.triangular(n)
    b0, b1 = matrix_buffers(env, wl)

    def tenant_programs(comm, dt0, dt1, tag):
        def rank0(mpi):
            yield mpi.send(b0, dt0, 1, dest=1, tag=tag, comm=comm)
            yield mpi.recv(b0, dt0, 1, source=1, tag=tag + 1, comm=comm)

        def rank1(mpi):
            yield mpi.recv(b1, dt1, 1, source=0, tag=tag, comm=comm)
            yield mpi.send(b1, dt1, 1, dest=0, tag=tag + 1, comm=comm)

        return [rank0, rank1]

    # tenant 1: cold caches — its misses fill them
    t1 = world.run(
        tenant_programs(
            world.comm_world,
            lower_triangular_type(n),
            lower_triangular_type(n),
            tag=1,
        )
    )
    c1 = world.stats().cache

    # tenant 2: fresh communicator, fresh (structurally identical) types
    world.reset_stats()
    t2 = world.run(
        tenant_programs(
            world.comm_world.dup(),
            lower_triangular_type(n),
            lower_triangular_type(n),
            tag=3,
        )
    )
    c2 = world.stats().cache
    assert c2.misses == 0 and c2.hits > 0, (
        f"tenant 2 should reuse tenant 1's descriptors "
        f"(hits={c2.hits}, misses={c2.misses})"
    )
    return {
        "tenant1_s": t1,
        "tenant2_s": t2,
        "tenant1_hits": float(c1.hits),
        "tenant1_misses": float(c1.misses),
        "tenant2_hits": float(c2.hits),
        "tenant2_misses": float(c2.misses),
        "tenant2_hit_rate": c2.hit_rate,
    }


@scenario("world_scale")
def _world_scale(profile: Profile) -> dict[str, float]:
    """Simulator-core scale: events/sec and wall clock at world width.

    Mixed pingpong + bcast load over host memory with ``transfer_log``
    off (see :mod:`repro.bench.world_scale`).  The event/transfer counts
    and simulated elapsed time are deterministic and tightly gated; the
    ``*_wall_s`` / ``*_per_wall_s`` metrics carry the machine-dependent
    throughput and are gated loosely by the regress naming convention.
    """
    from repro.bench.world_scale import world_scale_metrics

    sizes = profile.pick([256, 1024, 4096], [256, 1024])
    out: dict[str, float] = {}
    for ranks in sizes:
        for k, v in world_scale_metrics(ranks).items():
            out[f"ranks{ranks}_{k}"] = v
    return out


@scenario("coll_crossover")
def _coll_crossover(profile: Profile) -> dict[str, float]:
    """Rank-count x message-size sweep of the alltoall algorithm ladder.

    Times the staged (batched copy-to-host) and direct (one-sided IPC)
    alltoall over mostly-inter-node topologies and reports the per-peer
    block size where direct first beats staged — the measured crossover
    the ``coll_staged_threshold`` default mirrors.  Every time is off
    the deterministic virtual clock, so the gate holds the crossover
    point itself to the tight tolerance.
    """
    from repro.bench.harness import alltoall_times
    from repro.mpi.collectives import CollAlgorithm

    sizes = profile.pick(
        [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10],
        [4 << 10, 16 << 10, 64 << 10],
    )
    topos = profile.pick([(4, 1), (4, 2), (8, 1)], [(4, 2)])
    algos = [CollAlgorithm.STAGED, CollAlgorithm.DIRECT]
    out: dict[str, float] = {}
    for n_nodes, gpn in topos:
        crossover = 0.0
        for nbytes in sizes:
            times = alltoall_times(
                nbytes, algos, n_nodes=n_nodes, gpus_per_node=gpn
            )
            for algo, t in times.items():
                out[f"n{n_nodes}x{gpn}_{nbytes >> 10}kb_{algo}_s"] = t
            if not crossover and times["direct"] < times["staged"]:
                crossover = float(nbytes)
        out[f"n{n_nodes}x{gpn}_crossover_bytes"] = crossover
    return out


@scenario("traffic_mix")
def _traffic_mix(profile: Profile) -> dict[str, float]:
    """Multi-tenant traffic replay under the static default config.

    The seeded generator (:mod:`repro.workloads.traffic`) drives mixed
    eager/rendezvous/vector traffic over several dup'ed communicators;
    everything reported is off the virtual clock, so the gate holds the
    replay's elapsed time and byte volume to the tight tolerance.  The
    structurally-identical per-tenant datatypes must reuse each other's
    cached device descriptors — the cross-tenant hit rate rides along
    as a health metric.
    """
    from repro.workloads.traffic import TrafficSpec, run_traffic

    spec = TrafficSpec(
        rounds=profile.pick(6, 3),
        tenants=profile.pick(4, 3),
    )
    out = run_traffic(spec)
    assert out["cache_hits"] > 0, "tenants should share cached descriptors"
    return out


@scenario("traffic_tuned")
def _traffic_tuned(profile: Profile) -> dict[str, float]:
    """Autotuned traffic replay vs the best static configuration.

    Trains an observe-mode tuner by replaying the same traffic under
    each static (frag, depth) candidate — with a ``use_cuda_ipc=False``
    leg so the manual-pack copy-in/out baseline is a sampled choice —
    then replays once more deciding from the frozen table.  The
    acceptance bar: the tuned replay matches or beats the best static
    candidate (small slack for per-band decisions that optimize
    messages, not the whole-replay critical path).
    """
    from repro.tune import Autotuner, DecisionTable
    from repro.workloads.traffic import TrafficSpec, run_traffic

    spec = TrafficSpec(rounds=profile.pick(5, 3), tenants=3)
    candidates = profile.pick(
        [(256 << 10, 2), (1 << 20, 4), (4 << 20, 8)],
        [(256 << 10, 2), (1 << 20, 4)],
    )
    observe = Autotuner(DecisionTable(), mode="observe")
    out: dict[str, float] = {}
    best = None
    for frag, depth in candidates:
        base = MpiConfig(frag_bytes=frag, pipeline_depth=depth)
        for cfg, label in (
            (base, f"f{frag >> 10}k_d{depth}"),
            (base.but(use_cuda_ipc=False), f"f{frag >> 10}k_d{depth}_cio"),
        ):
            t = run_traffic(spec, config=cfg, tuner=observe)["elapsed_s"]
            out[f"static_{label}_s"] = t
            best = t if best is None else min(best, t)
    tuned_tuner = Autotuner(observe.table, mode="on")
    tuned = run_traffic(spec, tuner=tuned_tuner)["elapsed_s"]
    assert tuned <= best * 1.02, (
        f"tuned replay {tuned:.6f}s regressed past best static {best:.6f}s"
    )
    out["tuned_s"] = tuned
    out["best_static_s"] = best
    out["tuned_vs_best"] = tuned / best
    return out


@scenario("autotune_coll")
def _autotune_coll(profile: Profile) -> dict[str, float]:
    """Tuned ``"auto"`` alltoall vs the explicit algorithm ladder.

    Per size: time every tunable rung, record the measured wall time of
    each into a decision table, then run ``"auto"`` deciding from the
    frozen table — the tuned pick is choosing *among* the explicit
    rungs against exactly the metric being gated, so it must reproduce
    the best one bit-for-bit.
    """
    from repro.bench.harness import alltoall_times
    from repro.mpi.collectives import CollAlgorithm
    from repro.tune import Autotuner, DecisionTable

    sizes = profile.pick(
        [4 << 10, 16 << 10, 64 << 10, 256 << 10], [4 << 10, 64 << 10]
    )
    algos = [
        CollAlgorithm.STAGED, CollAlgorithm.NONBLOCKING, CollAlgorithm.DIRECT
    ]
    observe = Autotuner(DecisionTable(), mode="observe")
    statics = {}
    for nbytes in sizes:
        times = alltoall_times(nbytes, algos)
        statics[nbytes] = times
        # train on the wall time per iteration — the gated metric itself
        peer = max(nbytes // 8, 1) * 8
        key = observe.coll_key("alltoall", peer, True, n_nodes=2, size=4)
        for algo, t in times.items():
            observe.observe_coll(key, algo, t, peer * 4)
    tuned_tuner = Autotuner(observe.table, mode="on")
    out: dict[str, float] = {}
    for nbytes in sizes:
        tuned = alltoall_times(nbytes, ["auto"], tuner=tuned_tuner)["auto"]
        best = min(statics[nbytes].values())
        assert tuned <= best, (
            f"tuned auto alltoall at {nbytes}B took {tuned:.6f}s, best "
            f"explicit rung {best:.6f}s"
        )
        out[f"{nbytes >> 10}kb_tuned_s"] = tuned
        out[f"{nbytes >> 10}kb_best_static_s"] = best
    return out
