"""End-to-end observability smoke test: ``python -m repro.bench --smoke``.

Runs one rendezvous ping-pong per protocol — ``ipc_rdma`` (two GPUs,
shared memory), ``copyinout`` (two nodes over InfiniBand) and ``host``
(two host-only ranks) — with tracing on, then asserts the uniform stats
object every benchmark consumes is fully populated:

* every :class:`~repro.obs.stats.TransferStats` record is complete
  (protocol, peer, fragments, timestamps);
* the expected protocol was actually chosen;
* the tracer reports per-resource busy time, and the trace exports to
  Chrome/Perfetto JSON (with the metric snapshot embedded) and loads
  back.

It is both a CLI entry point and the body of a CI test
(``tests/bench/test_smoke.py``) — a cheap, always-on check that the
metrics plumbing stays wired through every layer.
"""

from __future__ import annotations

import os
import tempfile

from repro.bench.harness import make_env, matrix_buffers, pingpong_stats
from repro.mpi.config import MpiConfig
from repro.obs.stats import WorldStats
from repro.sim.trace import load_chrome_trace, save_chrome_trace
from repro.workloads.matrices import MatrixWorkload

__all__ = ["SMOKE_CASES", "run_smoke", "smoke_one"]

#: (environment kind, protocol the receiver must choose)
SMOKE_CASES = [
    ("sm-2gpu", "ipc_rdma"),
    ("ib", "copyinout"),
    ("cpu", "host"),
]


def smoke_one(kind: str, expect_protocol: str, trace_path: str) -> WorldStats:
    """One traced ping-pong on ``kind``; assert the stats are coherent."""
    # small fragments so even this small message genuinely pipelines
    env = make_env(kind, config=MpiConfig(frag_bytes=16 * 1024), trace=True)
    # triangular (indexed) type: takes the DEV path, so the CUDA_DEV
    # cache is consulted — the warmup fills it, the measured run hits
    wl = MatrixWorkload.triangular(n=128)  # ~64 KB packed: rendezvous
    b0, b1 = matrix_buffers(env, wl)
    per_iter, ws = pingpong_stats(
        env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=1, warmup=1
    )

    if per_iter <= 0.0:
        raise AssertionError(f"{kind}: non-positive round-trip time")
    if not ws.is_complete():
        bad = [t.to_dict() for t in ws.transfers if not t.is_complete()]
        raise AssertionError(f"{kind}: incomplete transfer records: {bad}")
    if len(ws.transfers) != 4:  # send+recv per direction
        raise AssertionError(f"{kind}: expected 4 records, got {len(ws.transfers)}")
    if set(ws.by_protocol) != {expect_protocol}:
        raise AssertionError(
            f"{kind}: expected protocol {expect_protocol!r}, got {ws.by_protocol}"
        )
    if ws.total_bytes != 2 * wl.datatype.size:
        raise AssertionError(f"{kind}: wrong byte count {ws.total_bytes}")
    if not ws.resource_busy_s:
        raise AssertionError(f"{kind}: tracer recorded no busy resources")
    if kind != "cpu":
        if ws.pack_busy_s <= 0.0:
            # GPU environments must show datatype-engine pack activity
            raise AssertionError(f"{kind}: no pack-stage busy time")
        if ws.cache.lookups == 0 or ws.cache_hit_rate <= 0.0:
            # the warmup filled the CUDA_DEV cache; the run must hit it
            raise AssertionError(f"{kind}: cache never hit ({ws.cache})")
        if ws.pack_wire_overlap_fraction <= 0.0:
            raise AssertionError(f"{kind}: pipeline shows no pack/wire overlap")
    if not ws.metrics:
        raise AssertionError(f"{kind}: empty metrics snapshot")

    save_chrome_trace(env.cluster.tracer, trace_path, metrics=ws)
    doc = load_chrome_trace(trace_path)
    if not doc.get("traceEvents"):
        raise AssertionError(f"{kind}: exported trace has no events")
    if "metrics" not in doc:
        raise AssertionError(f"{kind}: exported trace lost the metric snapshot")
    return ws


def run_smoke(trace_dir: str | None = None, verbose: bool = True) -> int:
    """Run every smoke case; returns a process exit code."""
    own_dir = None
    if trace_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-smoke-")
        trace_dir = own_dir.name
    try:
        os.makedirs(trace_dir, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        print(f"error: --trace-out {trace_dir!r} is not a directory")
        return 2
    try:
        for kind, protocol in SMOKE_CASES:
            path = os.path.join(trace_dir, f"smoke-{kind}.trace.json")
            ws = smoke_one(kind, protocol, path)
            if verbose:
                print(f"== {kind} ({protocol}) -> {path}")
                print(ws.summary())
        if verbose:
            print("smoke: all protocols OK")
        return 0
    finally:
        if own_dir is not None:
            own_dir.cleanup()
