"""End-to-end observability smoke test: ``python -m repro.bench --smoke``.

Runs one rendezvous ping-pong per protocol — ``ipc_rdma`` (two GPUs,
shared memory), ``copyinout`` (two nodes over InfiniBand) and ``host``
(two host-only ranks) — with tracing on, then asserts the uniform stats
object every benchmark consumes is fully populated:

* every :class:`~repro.obs.stats.TransferStats` record is complete
  (protocol, peer, fragments, timestamps);
* the expected protocol was actually chosen;
* the tracer reports per-resource busy time, and the trace exports to
  Chrome/Perfetto JSON (with the metric snapshot embedded) and loads
  back.

It is both a CLI entry point and the body of a CI test
(``tests/bench/test_smoke.py``) — a cheap, always-on check that the
metrics plumbing stays wired through every layer.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import replace

import numpy as np

from repro.bench.harness import make_env, matrix_buffers, pingpong_stats
from repro.datatype.convertor import pack_bytes
from repro.faults.plan import FaultSpec
from repro.mpi.config import MpiConfig
from repro.obs.stats import WorldStats
from repro.sim.trace import load_chrome_trace, save_chrome_trace
from repro.workloads.matrices import MatrixWorkload

__all__ = [
    "SMOKE_CASES",
    "chaos_spec",
    "faults_smoke_one",
    "run_faults_smoke",
    "run_smoke",
    "smoke_one",
]

#: (environment kind, protocol the receiver must choose)
SMOKE_CASES = [
    ("sm-2gpu", "ipc_rdma"),
    ("ib", "copyinout"),
    ("cpu", "host"),
]


def smoke_one(kind: str, expect_protocol: str, trace_path: str) -> WorldStats:
    """One traced ping-pong on ``kind``; assert the stats are coherent."""
    # small fragments so even this small message genuinely pipelines
    env = make_env(kind, config=MpiConfig(frag_bytes=16 * 1024), trace=True)
    # triangular (indexed) type: takes the DEV path, so the CUDA_DEV
    # cache is consulted — the warmup fills it, the measured run hits
    wl = MatrixWorkload.triangular(n=128)  # ~64 KB packed: rendezvous
    b0, b1 = matrix_buffers(env, wl)
    per_iter, ws = pingpong_stats(
        env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=1, warmup=1
    )

    if per_iter <= 0.0:
        raise AssertionError(f"{kind}: non-positive round-trip time")
    if not ws.is_complete():
        bad = [t.to_dict() for t in ws.transfers if not t.is_complete()]
        raise AssertionError(f"{kind}: incomplete transfer records: {bad}")
    if len(ws.transfers) != 4:  # send+recv per direction
        raise AssertionError(f"{kind}: expected 4 records, got {len(ws.transfers)}")
    if set(ws.by_protocol) != {expect_protocol}:
        raise AssertionError(
            f"{kind}: expected protocol {expect_protocol!r}, got {ws.by_protocol}"
        )
    if ws.total_bytes != 2 * wl.datatype.size:
        raise AssertionError(f"{kind}: wrong byte count {ws.total_bytes}")
    if not ws.resource_busy_s:
        raise AssertionError(f"{kind}: tracer recorded no busy resources")
    if kind != "cpu":
        if ws.pack_busy_s <= 0.0:
            # GPU environments must show datatype-engine pack activity
            raise AssertionError(f"{kind}: no pack-stage busy time")
        if ws.cache.lookups == 0 or ws.cache_hit_rate <= 0.0:
            # the warmup filled the CUDA_DEV cache; the run must hit it
            raise AssertionError(f"{kind}: cache never hit ({ws.cache})")
        if ws.pack_wire_overlap_fraction <= 0.0:
            raise AssertionError(f"{kind}: pipeline shows no pack/wire overlap")
    if not ws.metrics:
        raise AssertionError(f"{kind}: empty metrics snapshot")

    save_chrome_trace(env.cluster.tracer, trace_path, metrics=ws)
    doc = load_chrome_trace(trace_path)
    if not doc.get("traceEvents"):
        raise AssertionError(f"{kind}: exported trace has no events")
    if "metrics" not in doc:
        raise AssertionError(f"{kind}: exported trace lost the metric snapshot")
    return ws


#: the --faults chaos profile: every fault kind armed, gently
CHAOS_DEFAULTS = {
    "am_drop": 0.05,
    "am_dup": 0.05,
    "am_delay": 0.10,
    "ipc_open_fail": 0.20,
    "staging_fail": 0.20,
}


def chaos_spec(text: str = "") -> FaultSpec:
    """Build the chaos-smoke fault plan from a ``--faults`` argument.

    Starts from :data:`CHAOS_DEFAULTS` (all fault kinds on); any
    ``key=value`` the user supplies overrides the matching default, so
    ``--faults seed=7`` reseeds the full chaos profile while
    ``--faults am_drop=1.0,am_dup=0`` reshapes it.
    """
    user = FaultSpec.parse(text) if text else FaultSpec()
    given = {
        item.split("=", 1)[0].strip()
        for item in (text or "").split(",")
        if "=" in item
    }
    fill = {k: v for k, v in CHAOS_DEFAULTS.items() if k not in given}
    return replace(user, **fill)


def faults_smoke_one(kind: str, spec: FaultSpec) -> WorldStats:
    """One faulted one-way transfer on ``kind``; assert byte-exact delivery."""
    env = make_env(
        kind, config=MpiConfig(frag_bytes=16 * 1024, faults=spec)
    )
    wl = MatrixWorkload.triangular(n=128)
    b0, b1 = matrix_buffers(env, wl)
    dt = wl.datatype
    expected = pack_bytes(dt, 1, b0.bytes.copy())

    def rank0(mpi):
        yield mpi.send(b0, dt, 1, dest=1, tag=9)

    def rank1(mpi):
        yield mpi.recv(b1, dt, 1, source=0, tag=9)

    env.world.run([rank0, rank1])
    got = pack_bytes(dt, 1, b1.bytes)
    if not np.array_equal(expected, got):
        bad = int(np.count_nonzero(expected != got))
        raise AssertionError(
            f"{kind}: faulted transfer corrupted {bad}/{len(expected)} bytes"
        )
    ws = env.world.stats()
    if not ws.is_complete():
        raise AssertionError(f"{kind}: incomplete transfer records under faults")
    return ws


def run_faults_smoke(spec_text: str = "", verbose: bool = True) -> int:
    """Chaos smoke: every environment survives the fault plan byte-exact."""
    spec = chaos_spec(spec_text)
    if verbose:
        print(f"fault plan: {spec}")
    injected = 0
    for kind, _protocol in SMOKE_CASES:
        ws = faults_smoke_one(kind, spec)
        injected += sum(ws.faults_injected.values())
        if verbose:
            print(f"== {kind} (faulted, byte-exact)")
            print(ws.summary())
    if verbose:
        print(f"faults smoke: all environments byte-exact "
              f"({injected} faults injected)")
    return 0


def run_smoke(trace_dir: str | None = None, verbose: bool = True) -> int:
    """Run every smoke case; returns a process exit code."""
    own_dir = None
    if trace_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-smoke-")
        trace_dir = own_dir.name
    try:
        os.makedirs(trace_dir, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        print(f"error: --trace-out {trace_dir!r} is not a directory")
        return 2
    try:
        for kind, protocol in SMOKE_CASES:
            path = os.path.join(trace_dir, f"smoke-{kind}.trace.json")
            ws = smoke_one(kind, protocol, path)
            if verbose:
                print(f"== {kind} ({protocol}) -> {path}")
                print(ws.summary())
        if verbose:
            print("smoke: all protocols OK")
        return 0
    finally:
        if own_dir is not None:
            own_dir.cleanup()
