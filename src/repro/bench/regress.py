"""Perf-regression gate: compare a suite run against a checked-in baseline.

Tolerance policy (see ``docs/BENCHMARKS.md``):

* **simulated metrics** (everything under a scenario's ``metrics``) come
  off the deterministic virtual clock, so any drift means the model or
  an algorithm changed.  They are held to a tight relative tolerance in
  *both* directions — an unexplained speedup is as suspicious as a
  slowdown — and to per-metric overrides the baseline may carry.
* **wall-clock metrics by naming convention**: a scenario metric ending
  in ``_wall_s`` is host wall clock (gated like ``wall_seconds``:
  regression-only, ``baseline * WALL_FACTOR + WALL_FLOOR_S``); one
  ending in ``_per_wall_s`` is wall-clock throughput (regression-only
  lower bound: current must stay above ``baseline / WALL_FACTOR``).
  This lets scale scenarios (``world_scale``) publish machine-dependent
  events/sec next to their deterministic counts without brittle gates.
* **phase call counts** (``phases.*.count``) are exact integers produced
  by the same deterministic run; they must match the baseline exactly.
* **wall-clock** (``wall_seconds`` and ``phases.*.seconds``) depends on
  the machine, so only a gross *regression* fails: current must stay
  under ``baseline * WALL_FACTOR + WALL_FLOOR_S``.  Improvements never
  fail.

A baseline may carry ``{"tolerances": {"scenario.metric": rel_tol}}`` to
loosen (or tighten) individual simulated metrics.  Scenarios or metrics
present in the current run but absent from the baseline are warnings —
new coverage should prompt a baseline refresh, not block the build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "SIM_REL_TOL",
    "WALL_FACTOR",
    "WALL_FLOOR_S",
    "Issue",
    "compare",
    "load_baseline",
    "run_check",
]

#: default relative tolerance for deterministic simulated metrics
SIM_REL_TOL = 0.05
#: wall-clock regression factor (current may be up to this times baseline)
WALL_FACTOR = 3.0
#: absolute wall-clock headroom so micro-second baselines aren't brittle
WALL_FLOOR_S = 0.5


@dataclass(frozen=True)
class Issue:
    """One comparison finding; ``fail`` issues make the gate exit nonzero."""

    severity: str  # "fail" | "warn"
    metric: str  # dotted path, e.g. "fig9_pcie_bw.V_bw"
    message: str

    @property
    def is_failure(self) -> bool:
        return self.severity == "fail"

    def __str__(self) -> str:
        return f"[{self.severity.upper()}] {self.metric}: {self.message}"


def load_baseline(path: str) -> dict:
    """Read and validate a baseline document from disk.

    Strict by design: a baseline that is not valid JSON, not an object,
    or does not declare ``schema: repro-bench/1`` raises ``ValueError``
    instead of sliding into the comparison — a gate that cannot read its
    baseline must fail loudly, not warn and pass (``run_check`` turns
    the error into a clean nonzero exit).
    """
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as err:
            raise ValueError(f"baseline {path} is not valid JSON: {err}") from err
    if not isinstance(doc, dict):
        raise ValueError(
            f"baseline {path} must be a JSON object, got {type(doc).__name__}"
        )
    if doc.get("schema") != "repro-bench/1":
        raise ValueError(
            f"baseline {path} declares schema {doc.get('schema')!r}, "
            "expected 'repro-bench/1' (regenerate with --update-baseline)"
        )
    return doc


def _rel_delta(cur: float, base: float) -> float:
    denom = max(abs(base), 1e-30)
    return abs(cur - base) / denom


def _check_wall(issues: list[Issue], path: str, cur: float, base: float) -> None:
    limit = base * WALL_FACTOR + WALL_FLOOR_S
    if cur > limit:
        issues.append(
            Issue(
                "fail",
                path,
                f"wall-clock regression: {cur:.3f}s vs baseline {base:.3f}s "
                f"(limit {limit:.3f}s = {WALL_FACTOR:g}x + {WALL_FLOOR_S:g}s)",
            )
        )


def _check_rate(issues: list[Issue], path: str, cur: float, base: float) -> None:
    """Wall-clock throughput (``*_per_wall_s``): only a gross slowdown fails."""
    if base <= 0.0:
        return
    limit = base / WALL_FACTOR
    if cur < limit:
        issues.append(
            Issue(
                "fail",
                path,
                f"throughput regression: {cur:,.0f}/s vs baseline "
                f"{base:,.0f}/s (limit {limit:,.0f}/s = baseline/"
                f"{WALL_FACTOR:g})",
            )
        )


def compare(current: dict, baseline: dict, only=None) -> list[Issue]:
    """All comparison findings between a current run and a baseline.

    ``only`` restricts the check to a subset of scenario names — a run
    produced with ``--scenario`` is gated against just those baseline
    records instead of failing every scenario it never executed.  Names
    in ``only`` absent from the baseline are warnings (new coverage),
    but an empty intersection fails: a subset gate that checks nothing
    must not pass.
    """
    issues: list[Issue] = []

    for doc, who in ((current, "current"), (baseline, "baseline")):
        if doc.get("schema") != "repro-bench/1":
            issues.append(
                Issue(
                    "fail",
                    "schema",
                    f"{who} document has schema {doc.get('schema')!r}, "
                    "expected 'repro-bench/1'",
                )
            )
    if any(i.is_failure for i in issues):
        return issues

    if current.get("profile") != baseline.get("profile"):
        issues.append(
            Issue(
                "fail",
                "profile",
                f"profile mismatch: current {current.get('profile')!r} vs "
                f"baseline {baseline.get('profile')!r} — a quick run can only "
                "be checked against a quick baseline",
            )
        )
        return issues

    tolerances: dict = baseline.get("tolerances", {})
    cur_scen: dict = current.get("scenarios", {})
    base_scen: dict = baseline.get("scenarios", {})
    if only is not None:
        wanted = set(only)
        base_scen = {n: r for n, r in base_scen.items() if n in wanted}
        if not base_scen:
            issues.append(
                Issue(
                    "fail",
                    "scenarios",
                    f"none of the requested scenarios {sorted(wanted)} are in "
                    "the baseline — the subset gate would check nothing",
                )
            )
            return issues

    for name, base_rec in base_scen.items():
        cur_rec = cur_scen.get(name)
        if cur_rec is None:
            issues.append(
                Issue("fail", name, "scenario missing from the current run")
            )
            continue

        # deterministic simulated metrics: tight, both directions
        base_metrics = base_rec.get("metrics", {})
        cur_metrics = cur_rec.get("metrics", {})
        for metric, base_val in base_metrics.items():
            path = f"{name}.{metric}"
            if metric not in cur_metrics:
                issues.append(
                    Issue("fail", path, "metric missing from the current run")
                )
                continue
            cur_val = cur_metrics[metric]
            # machine-dependent metrics by naming convention: loose,
            # regression-only gates (see module docstring)
            if metric.endswith("_per_wall_s"):
                _check_rate(issues, path, float(cur_val), float(base_val))
                continue
            if metric.endswith("_wall_s"):
                _check_wall(issues, path, float(cur_val), float(base_val))
                continue
            tol = float(tolerances.get(path, SIM_REL_TOL))
            delta = _rel_delta(cur_val, base_val)
            if delta > tol:
                issues.append(
                    Issue(
                        "fail",
                        path,
                        f"simulated metric moved {delta * 100:.1f}% "
                        f"({cur_val:g} vs baseline {base_val:g}, "
                        f"tolerance {tol * 100:g}%)",
                    )
                )
        for metric in cur_metrics:
            if metric not in base_metrics:
                issues.append(
                    Issue(
                        "warn",
                        f"{name}.{metric}",
                        "metric not in baseline (refresh the baseline to track it)",
                    )
                )

        # deterministic phase call counts: exact
        base_phases = base_rec.get("phases", {})
        cur_phases = cur_rec.get("phases", {})
        for phase, base_ph in base_phases.items():
            cur_ph = cur_phases.get(phase)
            path = f"{name}.phases.{phase}"
            if cur_ph is None:
                issues.append(
                    Issue("fail", path, "phase missing from the current run")
                )
                continue
            if int(cur_ph.get("count", -1)) != int(base_ph.get("count", -1)):
                issues.append(
                    Issue(
                        "fail",
                        f"{path}.count",
                        f"phase call count changed: {cur_ph.get('count')} vs "
                        f"baseline {base_ph.get('count')} (deterministic — "
                        "a code-path change; refresh the baseline if intended)",
                    )
                )
            _check_wall(
                issues,
                f"{path}.seconds",
                float(cur_ph.get("seconds", 0.0)),
                float(base_ph.get("seconds", 0.0)),
            )

        # loose, regression-only wall clock
        _check_wall(
            issues,
            f"{name}.wall_seconds",
            float(cur_rec.get("wall_seconds", 0.0)),
            float(base_rec.get("wall_seconds", 0.0)),
        )

    for name in cur_scen:
        if name not in base_scen:
            issues.append(
                Issue(
                    "warn",
                    name,
                    "scenario not in baseline (refresh the baseline to gate it)",
                )
            )

    _check_wall(
        issues,
        "harness.wall_seconds",
        float(current.get("harness", {}).get("wall_seconds", 0.0)),
        float(baseline.get("harness", {}).get("wall_seconds", 0.0)),
    )
    return issues


def render_report(issues: Iterable[Issue]) -> str:
    """Human-readable multi-line report, failures first."""
    issues = list(issues)
    fails = [i for i in issues if i.is_failure]
    warns = [i for i in issues if not i.is_failure]
    lines = [str(i) for i in fails] + [str(i) for i in warns]
    lines.append(
        f"regression gate: {len(fails)} failure(s), {len(warns)} warning(s)"
    )
    return "\n".join(lines)


def run_check(
    current: dict, baseline_path: str, verbose: bool = True, only=None
) -> int:
    """Compare and print; returns a process exit code (1 on any failure).

    A missing or malformed baseline is itself a failure (exit 1 with a
    one-line reason), never a warn-and-pass.
    """
    try:
        baseline = load_baseline(baseline_path)
    except (OSError, ValueError) as err:
        if verbose:
            print(f"[FAIL] baseline: {err}")
            print("regression gate: 1 failure(s), 0 warning(s)")
        return 1
    issues = compare(current, baseline, only=only)
    if verbose:
        print(render_report(issues))
    return 1 if any(i.is_failure for i in issues) else 0
