"""Benchmark harness: environments, ping-pong drivers, reporting.

Every figure/table in the paper's evaluation has a pytest-benchmark
target under ``benchmarks/`` built from these pieces.  The measured
quantity is the **simulated clock** (deterministic); pytest-benchmark
additionally tracks the simulator's own wall-clock cost.
"""

from repro.bench.harness import (
    BenchEnv,
    make_env,
    matrix_buffers,
    one_way,
    pack_time,
    pingpong,
    mvapich_pingpong,
)
from repro.bench.reporting import Series, Table, fmt_bytes, fmt_time

__all__ = [
    "BenchEnv",
    "make_env",
    "matrix_buffers",
    "one_way",
    "pack_time",
    "pingpong",
    "mvapich_pingpong",
    "Series",
    "Table",
    "fmt_bytes",
    "fmt_time",
]
