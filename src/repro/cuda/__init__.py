"""A CUDA-runtime-shaped facade over the simulated GPU.

The GPU datatype engine and the baselines are written against this API —
``malloc``/``memcpy``/``memcpy2d``/streams/events/IPC/zero-copy — so the
code reads like the CUDA code in the paper while executing on the
simulated hardware underneath.
"""

from repro.cuda.runtime import CudaContext, Event, MemcpyKind
from repro.cuda.ipc import IpcMemHandle
from repro.cuda.uma import map_host_buffer, is_mapped_host

__all__ = [
    "CudaContext",
    "Event",
    "MemcpyKind",
    "IpcMemHandle",
    "map_host_buffer",
    "is_mapped_host",
]
