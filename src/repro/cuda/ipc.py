"""CUDA IPC: exposing one process's device buffer to another.

Intra-node, the paper's RDMA protocol rests on CUDA IPC: the sender
extracts a memory handle for its packed-fragment ring buffer, ships it in
the connection-request Active Message, and the receiver maps it once —
"a single one-time establishment of the RDMA connection (and then caching
the registration)" (Section 4.1).  Opening a handle costs
``ipc_registration_cost``; subsequent uses of the mapped buffer are free,
which is precisely why the paper moves pipelining from the PML down into
the BTL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faults.plan import IpcOpenError
from repro.hw.gpu import Gpu
from repro.hw.memory import Buffer
from repro.sim.core import Future

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan

__all__ = ["IpcMemHandle"]


class IpcMemHandle:
    """An exportable reference to a device buffer."""

    def __init__(self, buf: Buffer) -> None:
        if not buf.is_device:
            raise ValueError("IPC handles can only reference device memory")
        self.allocation = buf.allocation
        self.offset = buf.offset
        self.nbytes = buf.nbytes
        self.source_gpu: Gpu = buf.device  # type: ignore[assignment]

    @classmethod
    def get(cls, buf: Buffer) -> "IpcMemHandle":
        """cudaIpcGetMemHandle."""
        return cls(buf)

    def open(
        self,
        opener: Gpu,
        registration_cache: Optional[dict] = None,
        faults: "Optional[FaultPlan]" = None,
    ) -> Future:
        """cudaIpcOpenMemHandle: map the remote buffer into ``opener``.

        Resolves with a :class:`Buffer` aliasing the exporter's bytes.
        The first open of a given allocation pays the registration cost;
        a registration cache (keyed per opener) makes repeats free.

        With a :class:`~repro.faults.FaultPlan`, a first (uncached) open
        may fail: the returned future then fails with
        :class:`~repro.faults.IpcOpenError` after the registration cost
        (the driver tried), and nothing is cached — a retry flips a
        fresh coin.
        """
        sim = opener.sim
        key = (self.allocation.alloc_id, self.offset, self.nbytes)
        mapped = Buffer(self.allocation, self.offset, self.nbytes, label="ipc-mapped")
        if registration_cache is not None and key in registration_cache:
            fut = Future(sim, label="ipc.open.cached")
            fut.resolve(mapped)
            return fut
        cost = _registration_cost(opener)
        if faults is not None and faults.fail_ipc_open():
            fut = Future(sim, label="ipc.open.failed")
            sim.call_after(
                cost,
                lambda: fut.fail(
                    IpcOpenError(
                        f"cudaIpcOpenMemHandle failed mapping "
                        f"{self.nbytes}B from {self.source_gpu.name} "
                        f"into {opener.name} (injected)"
                    )
                ),
            )
            return fut
        if registration_cache is not None:
            registration_cache[key] = True
        return sim.timeout(cost, value=mapped, label="ipc.open")


def _registration_cost(gpu: Gpu) -> float:
    node = gpu.node
    if node is None:
        return 90e-6
    return node.params.ipc_registration_cost
