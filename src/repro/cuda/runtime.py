"""CUDA-runtime-style operations on a simulated GPU.

Only what the paper's engine needs is exposed: memory management, the
memcpy family (including ``cudaMemcpy2D`` with its alignment-sensitive
cost), streams and events.  Kernel launches live in
:mod:`repro.gpu_engine`, which computes kernel costs via the hardware
model and submits through :meth:`repro.hw.gpu.Gpu.launch_kernel`.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.hw.gpu import Gpu, Stream
from repro.hw.memory import Buffer
from repro.sim.core import Future

__all__ = ["MemcpyKind", "Event", "CudaContext"]


class MemcpyKind(enum.Enum):
    """Direction of a memcpy (cudaMemcpyKind)."""

    H2D = "h2d"
    D2H = "d2h"
    D2D = "d2d"
    H2H = "h2h"
    DEFAULT = "default"  # infer from buffer kinds, like cudaMemcpyDefault


class Event:
    """cudaEvent: captures a stream's position when recorded."""

    def __init__(self, ctx: "CudaContext") -> None:
        self.ctx = ctx
        self._fut: Optional[Future] = None

    def record(self, stream: Optional[Stream] = None) -> "Event":
        """Capture the stream's current tail (cudaEventRecord)."""
        stream = stream or self.ctx.gpu.default_stream
        self._fut = stream.synchronize()
        return self

    @property
    def recorded(self) -> bool:
        return self._fut is not None

    @property
    def complete(self) -> bool:
        return self._fut is not None and self._fut.done

    def synchronize(self) -> Future:
        """Future resolving when the recorded position completes."""
        if self._fut is None:
            raise RuntimeError("event never recorded")
        return self._fut


class CudaContext:
    """Per-GPU runtime handle (the moral equivalent of a CUDA context)."""

    def __init__(self, gpu: Gpu) -> None:
        self.gpu = gpu

    # -- memory ---------------------------------------------------------
    def malloc(self, nbytes: int, label: str = "") -> Buffer:
        """Allocate device memory (cudaMalloc)."""
        return self.gpu.memory.alloc(nbytes, label=label)

    def free(self, buf: Buffer) -> None:
        """Release a device allocation (cudaFree)."""
        buf.free()

    def malloc_host(self, nbytes: int, label: str = "") -> Buffer:
        """Pinned host memory (allocated from the owning node's arena)."""
        if self.gpu.node is None:
            raise RuntimeError(f"{self.gpu.name} not attached to a node")
        return self.gpu.node.host_memory.alloc(nbytes, label=label)

    # -- streams / events --------------------------------------------------
    def stream(self, name: str) -> Stream:
        """Get or create a named stream on this GPU."""
        return self.gpu.stream(name)

    def event(self) -> Event:
        """Create an unrecorded event."""
        return Event(self)

    # -- memcpy family ----------------------------------------------------
    def infer_kind(self, dst: Buffer, src: Buffer) -> MemcpyKind:
        """cudaMemcpyDefault-style direction inference from buffer kinds."""
        if src.is_device and dst.is_device:
            return MemcpyKind.D2D
        if src.is_device:
            return MemcpyKind.D2H
        if dst.is_device:
            return MemcpyKind.H2D
        return MemcpyKind.H2H

    def memcpy(
        self,
        dst: Buffer,
        src: Buffer,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
        stream: Optional[Stream] = None,
    ) -> Future:
        """Asynchronous memcpy on a stream; future resolves at completion."""
        if kind is MemcpyKind.DEFAULT:
            kind = self.infer_kind(dst, src)
        if kind is MemcpyKind.D2D:
            src_gpu = src.device
            dst_gpu = dst.device
            if src_gpu is dst_gpu or src_gpu is None or dst_gpu is None:
                return self.gpu.memcpy_d2d(dst, src, stream=stream)
            # cross-GPU: issue on this context's GPU toward the peer
            if self.gpu is src_gpu:
                return self.gpu.memcpy_peer(dst, src, dst_gpu, stream=stream)
            return self.gpu.memcpy_peer(dst, src, src_gpu, stream=stream)
        if kind is MemcpyKind.D2H:
            return self.gpu.memcpy_d2h(dst, src, stream=stream)
        if kind is MemcpyKind.H2D:
            return self.gpu.memcpy_h2d(dst, src, stream=stream)
        # H2H goes through the host CPU
        node = self.gpu.node
        if node is None:
            raise RuntimeError("H2H memcpy requires a node")
        nbytes = src.nbytes

        def move() -> None:
            dst.bytes[:nbytes] = src.bytes

        return node.cpu_memcpy_op(nbytes, fn=move, label="memcpyH2H")

    def memcpy2d(
        self,
        dst: Buffer,
        dpitch: int,
        src: Buffer,
        spitch: int,
        width: int,
        height: int,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
        stream: Optional[Stream] = None,
    ) -> Future:
        """``cudaMemcpy2D``: ``height`` rows of ``width`` bytes.

        This is the primitive MVAPICH's vectorization approach leans on;
        its per-row descriptor cost and 64 B alignment sensitivity are
        modeled in :meth:`repro.hw.gpu.Gpu.memcpy2d_time` (Fig 8).
        """
        if width > min(dpitch, spitch):
            raise ValueError("memcpy2d: width exceeds a pitch")
        if src.nbytes < (height - 1) * spitch + width:
            raise ValueError("memcpy2d: source too small")
        if dst.nbytes < (height - 1) * dpitch + width:
            raise ValueError("memcpy2d: destination too small")
        if kind is MemcpyKind.DEFAULT:
            kind = self.infer_kind(dst, src)
        stream = stream or self.gpu.default_stream
        nbytes = width * height

        def move() -> None:
            sb, db = src.bytes, dst.bytes
            if width == spitch == dpitch:
                db[:nbytes] = sb[:nbytes]
                return
            s2 = sb[: (height - 1) * spitch + width]
            d2 = db[: (height - 1) * dpitch + width]
            for r in range(height):
                d2[r * dpitch : r * dpitch + width] = s2[
                    r * spitch : r * spitch + width
                ]

        if kind is MemcpyKind.D2D:
            duration = self.gpu.memcpy2d_time(width, height, over_pcie=False)
            return stream.enqueue(
                duration,
                fn=move,
                label="memcpy2D.d2d",
                co_links=(self.gpu.copy_engine,),
                nbytes=nbytes,
            )
        if kind in (MemcpyKind.D2H, MemcpyKind.H2D):
            link = self.gpu.d2h_link if kind is MemcpyKind.D2H else self.gpu.h2d_link
            if link is None:
                raise RuntimeError(f"{self.gpu.name}: not wired to a node")
            duration = self.gpu.memcpy2d_time(
                width, height, over_pcie=True, pcie_bw=link.bandwidth
            )
            return stream.enqueue(
                duration,
                fn=move,
                label=f"memcpy2D.{kind.value}",
                co_links=(link,),
                nbytes=nbytes,
            )
        raise ValueError(f"memcpy2d: unsupported kind {kind}")
