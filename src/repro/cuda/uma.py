"""Unified Memory Architecture zero-copy support.

The paper's copy-in/copy-out protocol optionally maps the host staging
buffer into GPU address space ("zero copy"), so the pack kernel writes
straight through PCIe and "the data movement is implicitly handled by
hardware, which is able to overlap it with pack/unpack operations"
(Section 4.2).  We model that by registering a host buffer region as
*mapped*; the GPU engine then runs the kernel with PCIe as a co-occupied
link and the kernel's effective rate clamped to
``min(kernel_bw, pcie_bw)``, removing the separate D2H/H2D memcpy
entirely (the ``cpy`` lines in Fig 7).

Registration is region-based: any sub-buffer (slice) of a mapped region
is itself mapped, matching CUDA pointer-arithmetic semantics.
"""

from __future__ import annotations

from repro.hw.gpu import Gpu
from repro.hw.memory import Buffer

__all__ = ["map_host_buffer", "unmap_host_buffer", "is_mapped_host", "mapped_gpu"]

# allocation id -> list of (start, end, gpu)
_REGIONS: dict[int, list[tuple[int, int, Gpu]]] = {}


def map_host_buffer(buf: Buffer, gpu: Gpu) -> Buffer:
    """cudaHostRegister + cudaHostGetDevicePointer.

    Returns the same buffer, now usable as a kernel target from ``gpu``.
    """
    if not buf.is_host:
        raise ValueError("only host memory can be zero-copy mapped")
    _REGIONS.setdefault(buf.allocation.alloc_id, []).append(
        (buf.offset, buf.offset + buf.nbytes, gpu)
    )
    return buf


def unmap_host_buffer(buf: Buffer) -> None:
    """cudaHostUnregister for an exact previously mapped region."""
    regions = _REGIONS.get(buf.allocation.alloc_id, [])
    target = (buf.offset, buf.offset + buf.nbytes)
    for i, (lo, hi, _gpu) in enumerate(regions):
        if (lo, hi) == target:
            del regions[i]
            return
    raise ValueError(f"{buf!r} was not zero-copy mapped")


def _find(buf: Buffer) -> Gpu | None:
    for lo, hi, gpu in _REGIONS.get(buf.allocation.alloc_id, ()):
        if lo <= buf.offset and buf.offset + buf.nbytes <= hi:
            return gpu
    return None


def is_mapped_host(buf: Buffer) -> bool:
    """True if the buffer lies inside a zero-copy-mapped host region."""
    return buf.is_host and _find(buf) is not None


def mapped_gpu(buf: Buffer) -> Gpu:
    """The GPU a mapped host buffer is visible to; raises if unmapped."""
    gpu = _find(buf)
    if gpu is None:
        raise ValueError(f"{buf!r} is not zero-copy mapped")
    return gpu
