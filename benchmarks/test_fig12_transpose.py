"""Figure 12: matrix-transpose ping-pong — the datatype-engine stress test.

"Matrix transpose is a very complex operation and a good stress-test for
a datatype engine.  With column-major storage ... after the transpose,
each column can be represented by a vector type with a block length of 1
element; consequently, the whole transposed matrix is a collection of N
vector types" (Section 5.2.3).

The sender ships the matrix contiguously; the receiver unpacks with the
transpose datatype — N^2 single-element blocks.  Our DEV kernel consumes
them as work units in one launch; MVAPICH's vectorization needs one
cudaMemcpy2D per output column, each with N rows of 8 bytes.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import transpose_times

PROFILE = current_profile()
SIZES = PROFILE.pick([256, 512, 1024], [256, 512])
ENVS = {"sm-2gpu": "SM", "ib": "IB"}


@pytest.mark.figure("fig12")
def test_fig12_transpose(benchmark, show):
    results = {}
    for kind, label in ENVS.items():
        series = Series(
            f"Fig 12 ({label}): matrix transpose ping-pong",
            "N",
            ["transpose", "transpose-MVAPICH"],
        )
        for n in SIZES:
            series.add(n, **transpose_times(kind, n))
        show(series.to_table(fmt_time))
        results[kind] = series

    i = len(SIZES) - 1
    for kind, series in results.items():
        ours = series.column("transpose")[i]
        theirs = series.column("transpose-MVAPICH")[i]
        assert ours < theirs, f"{kind}: ours should win the transpose"

    benchmark(transpose_times, "sm-2gpu", 256)
