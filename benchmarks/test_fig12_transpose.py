"""Figure 12: matrix-transpose ping-pong — the datatype-engine stress test.

"Matrix transpose is a very complex operation and a good stress-test for
a datatype engine.  With column-major storage ... after the transpose,
each column can be represented by a vector type with a block length of 1
element; consequently, the whole transposed matrix is a collection of N
vector types" (Section 5.2.3).

The sender ships the matrix contiguously; the receiver unpacks with the
transpose datatype — N^2 single-element blocks.  Our DEV kernel consumes
them as work units in one launch; MVAPICH's vectorization needs one
cudaMemcpy2D per output column, each with N rows of 8 bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    Series,
    fmt_time,
    make_env,
    mvapich_pingpong,
    pingpong,
)
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.workloads.matrices import transpose_type

SIZES = [256, 512, 1024]
ENVS = {"sm-2gpu": "SM", "ib": "IB"}


def transpose_times(env_kind: str, n: int) -> dict[str, float]:
    C = contiguous(n * n, DOUBLE).commit()
    TR = transpose_type(n)
    out = {}
    env = make_env(env_kind)
    p0, p1 = env.world.procs
    b0 = p0.ctx.malloc(n * n * 8)
    b0.write(np.random.default_rng(7).random(n * n))
    b1 = p1.ctx.malloc(n * n * 8)
    out["transpose"] = pingpong(env, b0, C, 1, b1, TR, 1, iters=2)
    # verify the data really arrives transposed
    a = b0.view("f8").reshape(n, n)
    b = b1.view("f8").reshape(n, n)
    assert np.array_equal(b, a.T), "transpose semantics broken"

    env2 = make_env(env_kind)
    q0, q1 = env2.world.procs
    c0 = q0.ctx.malloc(n * n * 8)
    c0.write(np.random.default_rng(8).random(n * n))
    c1 = q1.ctx.malloc(n * n * 8)
    out["transpose-MVAPICH"] = mvapich_pingpong(env2, c0, C, 1, c1, TR, 1, iters=1)
    a = c0.view("f8").reshape(n, n)
    b = c1.view("f8").reshape(n, n)
    assert np.array_equal(b, a.T), "MVAPICH transpose semantics broken"
    return out


@pytest.mark.figure("fig12")
def test_fig12_transpose(benchmark, show):
    results = {}
    for kind, label in ENVS.items():
        series = Series(
            f"Fig 12 ({label}): matrix transpose ping-pong",
            "N",
            ["transpose", "transpose-MVAPICH"],
        )
        for n in SIZES:
            series.add(n, **transpose_times(kind, n))
        show(series.to_table(fmt_time))
        results[kind] = series

    i = len(SIZES) - 1
    for kind, series in results.items():
        ours = series.column("transpose")[i]
        theirs = series.column("transpose-MVAPICH")[i]
        assert ours < theirs, f"{kind}: ours should win the transpose"

    benchmark(transpose_times, "sm-2gpu", 256)
