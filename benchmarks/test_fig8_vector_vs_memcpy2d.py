"""Figure 8: vector pack kernel vs ``cudaMemcpy2D``.

Block counts fixed at 1 K and 8 K; block size sweeps small to large,
deliberately including non-64 B-multiple sizes.  Paper findings:

* ``cudaMemcpy2D`` performance "highly depends on the block size: block
  sizes that are a multiple of 64 bytes perform better, while others
  experience significant performance regression especially when the
  problem size increases";
* for in-device movement the pack kernel matches ``cudaMemcpy2D``;
* the kernel's zero-copy D2H path competes with ``cudaMemcpy2D`` D2H.
"""

from __future__ import annotations

import pytest

from repro.bench import fmt_time
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import memcpy2d_sweep

PROFILE = current_profile()
#: the asserted points (96/192/4096) survive the quick cut
BLOCK_SIZES = PROFILE.pick(
    [64, 96, 128, 192, 256, 448, 512, 1024, 4096],
    [64, 96, 192, 512, 4096],
)
BLOCK_COUNTS = PROFILE.pick([1024, 8192], [1024])


def sweep(n_blocks: int):
    return memcpy2d_sweep(n_blocks, BLOCK_SIZES)


@pytest.mark.figure("fig8")
def test_fig8_vector_vs_memcpy2d(benchmark, show):
    for n_blocks in BLOCK_COUNTS:
        series = sweep(n_blocks)
        show(series.to_table(fmt_time))
        sizes = series.x
        k_d2d = series.column("kernel-d2d")
        m_d2d = series.column("mcp2d-d2d")
        m_d2h = series.column("mcp2d-d2h")
        k_d2h = series.column("kernel-d2h(cpy)")
        for i, bs in enumerate(sizes):
            # in-device: "our kernels achieve almost the same performance
            # as cudaMemcpy2D" — never slower, never wildly faster at the
            # bandwidth-bound end
            assert k_d2d[i] <= m_d2d[i] * 1.1, f"kernel-d2d slow at {bs}"
        i_big = sizes.index(4096)
        assert k_d2d[i_big] > m_d2d[i_big] * 0.5, "d2d paths should converge"
        # misaligned (non-64B-multiple) block sizes regress for memcpy2d
        t_192 = m_d2h[sizes.index(192)] / 192
        t_96 = m_d2h[sizes.index(96)] / 96
        assert t_96 > t_192 * 1.3, "misaligned 96B should regress vs aligned 192B"
        # at large aligned blocks the kernel zero-copy path is competitive
        i = sizes.index(4096)
        assert k_d2h[i] < m_d2h[i] * 1.5

    benchmark(sweep, 1024)
