"""Figure 8: vector pack kernel vs ``cudaMemcpy2D``.

Block counts fixed at 1 K and 8 K; block size sweeps small to large,
deliberately including non-64 B-multiple sizes.  Paper findings:

* ``cudaMemcpy2D`` performance "highly depends on the block size: block
  sizes that are a multiple of 64 bytes perform better, while others
  experience significant performance regression especially when the
  problem size increases";
* for in-device movement the pack kernel matches ``cudaMemcpy2D``;
* the kernel's zero-copy D2H path competes with ``cudaMemcpy2D`` D2H.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time, make_env
from repro.cuda.runtime import CudaContext, MemcpyKind
from repro.cuda.uma import map_host_buffer
from repro.datatype.ddt import hvector
from repro.datatype.primitives import BYTE
from repro.gpu_engine import EngineOptions

BLOCK_SIZES = [64, 96, 128, 192, 256, 448, 512, 1024, 4096]
BLOCK_COUNTS = [1024, 8192]
STRIDE_PAD = 64  # gap between blocks


def sweep(n_blocks: int) -> Series:
    series = Series(
        f"Fig 8: vector pack vs cudaMemcpy2D, {n_blocks} blocks",
        "blockB",
        ["kernel-d2d", "mcp2d-d2d", "kernel-d2h(cpy)", "mcp2d-d2h", "mcp2d-d2d2h"],
    )
    for bs in BLOCK_SIZES:
        env = make_env("sm-1gpu")
        proc = env.world.procs[0]
        gpu = env.gpu0
        ctx = CudaContext(gpu)
        sim = env.sim
        stride = bs + STRIDE_PAD
        dt = hvector(n_blocks, bs, stride, BYTE).commit()
        total = n_blocks * bs
        src = ctx.malloc(n_blocks * stride)
        dst = ctx.malloc(total)
        hdst = proc.node.host_memory.alloc(total)
        map_host_buffer(hdst, gpu)

        def timed(coro_or_fut):
            t0 = sim.now
            if hasattr(coro_or_fut, "add_callback"):
                sim.run_until_complete(coro_or_fut)
            else:
                sim.run_until_complete(sim.spawn(coro_or_fut))
            return sim.now - t0

        opts = EngineOptions(use_cache=True)
        proc.engine.warm_cache(dt, 1)
        job = proc.engine.pack_job(dt, 1, src, opts)
        kernel_d2d = timed(job.process_all(dst))
        job = proc.engine.pack_job(dt, 1, src, opts)
        kernel_d2h = timed(job.process_all(hdst))
        mcp_d2d = timed(
            ctx.memcpy2d(dst, bs, src, stride, bs, n_blocks, MemcpyKind.D2D)
        )
        mcp_d2h = timed(
            ctx.memcpy2d(hdst, bs, src, stride, bs, n_blocks, MemcpyKind.D2H)
        )
        # d2d2h: pack in-device with memcpy2d, then one contiguous D2H
        def d2d2h():
            yield ctx.memcpy2d(dst, bs, src, stride, bs, n_blocks, MemcpyKind.D2D)
            yield gpu.memcpy_d2h(hdst, dst)

        mcp_d2d2h = timed(d2d2h())
        series.add(
            bs,
            **{
                "kernel-d2d": kernel_d2d,
                "mcp2d-d2d": mcp_d2d,
                "kernel-d2h(cpy)": kernel_d2h,
                "mcp2d-d2h": mcp_d2h,
                "mcp2d-d2d2h": mcp_d2d2h,
            },
        )
    return series


@pytest.mark.figure("fig8")
def test_fig8_vector_vs_memcpy2d(benchmark, show):
    for n_blocks in BLOCK_COUNTS:
        series = sweep(n_blocks)
        show(series.to_table(fmt_time))
        sizes = series.x
        k_d2d = series.column("kernel-d2d")
        m_d2d = series.column("mcp2d-d2d")
        m_d2h = series.column("mcp2d-d2h")
        k_d2h = series.column("kernel-d2h(cpy)")
        for i, bs in enumerate(sizes):
            # in-device: "our kernels achieve almost the same performance
            # as cudaMemcpy2D" — never slower, never wildly faster at the
            # bandwidth-bound end
            assert k_d2d[i] <= m_d2d[i] * 1.1, f"kernel-d2d slow at {bs}"
        i_big = sizes.index(4096)
        assert k_d2d[i_big] > m_d2d[i_big] * 0.5, "d2d paths should converge"
        # misaligned (non-64B-multiple) block sizes regress for memcpy2d
        t_192 = m_d2h[sizes.index(192)] / 192
        t_96 = m_d2h[sizes.index(96)] / 96
        assert t_96 > t_192 * 1.3, "misaligned 96B should regress vs aligned 192B"
        # at large aligned blocks the kernel zero-copy path is competitive
        i = sizes.index(4096)
        assert k_d2h[i] < m_d2h[i] * 1.5

    benchmark(sweep, 1024)
