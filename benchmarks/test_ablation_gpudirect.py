"""Ablation: GPUDirect RDMA vs host staging across message sizes.

The paper (citing [14]) avoids GPUDirect RDMA for its pipelines because
"it only delivers interesting performance for small messages (less than
30KB), which is not a typical problem size of GPU applications"; large
GPU messages go through host memory instead.  This bench demonstrates
that crossover: direct NIC access to device memory skips the PCIe D2H
leg (a win for latency-bound small messages) but its large-message
bandwidth collapses, while the host-staged zero-copy pipeline keeps the
full wire rate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Series, fmt_time, make_env
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.mpi.config import MpiConfig

SIZES = [1 << 10, 8 << 10, 16 << 10, 32 << 10, 128 << 10, 1 << 20]


def one_way(nbytes: int, gpudirect: bool) -> float:
    cfg = MpiConfig(
        use_gpudirect_rdma=gpudirect,
        # keep every probed size on the eager/direct path for a clean
        # apples-to-apples wire comparison
        eager_limit=2 << 20,
    )
    env = make_env("ib", config=cfg)
    dt = contiguous(nbytes // 8, DOUBLE).commit()
    b0 = env.world.procs[0].ctx.malloc(nbytes)
    b0.write(np.random.default_rng(1).random(nbytes // 8))
    b1 = env.world.procs[1].ctx.malloc(nbytes)

    def s(mpi):
        yield mpi.send(b0, dt, 1, dest=1, tag=0)

    def r(mpi):
        yield mpi.recv(b1, dt, 1, source=0, tag=0)

    env.world.run([s, r])  # warm-up
    elapsed = env.world.run([s, r])
    assert np.array_equal(b0.bytes, b1.bytes)
    return elapsed


@pytest.mark.figure("ablation-gpudirect")
def test_ablation_gpudirect(benchmark, show):
    series = Series(
        "Ablation: GPUDirect RDMA vs host-staged transfer (IB, one-way)",
        "size",
        ["gpudirect", "host-staged"],
    )
    results = {}
    for nbytes in SIZES:
        g = one_way(nbytes, gpudirect=True)
        h = one_way(nbytes, gpudirect=False)
        results[nbytes] = (g, h)
        series.add(f"{nbytes >> 10}KiB", gpudirect=g, **{"host-staged": h})
    show(series.to_table(fmt_time))

    # below the crossover GPUDirect wins (no PCIe D2H leg)...
    g_small, h_small = results[8 << 10]
    assert g_small < h_small, "GPUDirect should win small messages"
    assert results[16 << 10][0] < results[16 << 10][1]
    # ...the crossover falls in the paper's ~30 KB neighbourhood...
    g_32, h_32 = results[32 << 10]
    assert g_32 > h_32, "32 KiB should already favour host staging"
    # ...and beyond it the degraded device-read bandwidth clearly loses
    g_big, h_big = results[1 << 20]
    assert g_big > h_big * 1.2, "host staging should win large messages"

    benchmark(one_way, 8 << 10, True)
