"""Figure 7: pack+unpack time of the GPU datatype engine vs matrix size.

Left chart (bypass CPU — data stays on the GPU): ``V-d2d``, ``T-d2d``,
``T-d2d-pipeline``, ``T-d2d-cached``.  Right chart (through host memory):
``V-d2d2h``, ``V-cpy`` (zero-copy), ``T-d2d2h-cached``, ``T-cpy-cached``.

Paper findings reproduced here:

* pipelining the CUDA_DEV preparation with the kernels substantially
  cuts the triangular (indexed) path — "almost doubling the performance";
* caching the CUDA_DEVs removes preparation entirely and is fastest;
* an uncached T costs about as much as a V of the same matrix size
  despite carrying half the bytes — the preparation overhead;
* zero-copy ("cpy") is slightly faster than explicit D2H/H2D ("d2d2h").
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import engine_times

PROFILE = current_profile()
SIZES = PROFILE.pick([512, 1024, 2048, 4096], [512, 1024])


@pytest.mark.figure("fig7")
def test_fig7_engine_time(benchmark, show):
    left = Series(
        "Fig 7a: pack+unpack, bypass CPU",
        "N",
        ["V-d2d", "T-d2d", "T-d2d-pipeline", "T-d2d-cached"],
    )
    right = Series(
        "Fig 7b: pack+unpack, through host",
        "N",
        ["V-d2d2h", "V-cpy", "T-d2d2h-cached", "T-cpy-cached"],
    )
    for n in SIZES:
        r = engine_times(n)
        left.add(n, **{k: r[k] for k in left.columns})
        right.add(n, **{k: r[k] for k in right.columns})
    show(left.to_table(fmt_time))
    show(right.to_table(fmt_time))

    i = len(SIZES) - 1
    t_plain = left.column("T-d2d")[i]
    t_pipe = left.column("T-d2d-pipeline")[i]
    t_cached = left.column("T-d2d-cached")[i]
    v_plain = left.column("V-d2d")[i]
    # caching removes the DEV preparation entirely: always fastest
    assert t_cached < t_pipe, "caching should beat pipelining"
    assert t_cached < t_plain, "caching should beat the uncached path"
    # zero-copy beats explicit staging
    assert right.column("V-cpy")[i] < right.column("V-d2d2h")[i]
    if PROFILE.is_full:
        # pipelining only wins once the message spans several fragments,
        # so the ordering and the paper bands need the 4096 point
        assert t_pipe < t_plain * 0.85, "pipelining should cut the T time"
        assert t_plain / t_cached > 1.4, "prep should be a large share of T-d2d"
        # an uncached T costs about as much as V despite half the payload
        assert 0.7 <= t_plain / v_plain <= 1.3

    benchmark(engine_times, 1024)
