"""Figure 7: pack+unpack time of the GPU datatype engine vs matrix size.

Left chart (bypass CPU — data stays on the GPU): ``V-d2d``, ``T-d2d``,
``T-d2d-pipeline``, ``T-d2d-cached``.  Right chart (through host memory):
``V-d2d2h``, ``V-cpy`` (zero-copy), ``T-d2d2h-cached``, ``T-cpy-cached``.

Paper findings reproduced here:

* pipelining the CUDA_DEV preparation with the kernels substantially
  cuts the triangular (indexed) path — "almost doubling the performance";
* caching the CUDA_DEVs removes preparation entirely and is fastest;
* an uncached T costs about as much as a V of the same matrix size
  despite carrying half the bytes — the preparation overhead;
* zero-copy ("cpy") is slightly faster than explicit D2H/H2D ("d2d2h").
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time, make_env
from repro.cuda.uma import map_host_buffer
from repro.gpu_engine import EngineOptions
from repro.workloads.matrices import lower_triangular_type, submatrix_type

SIZES = [512, 1024, 2048, 4096]
PIPE_FRAG = 4 << 20


def _roundtrip(env, dt, src, options, frag, dst, warm_cache=False):
    """pack into dst then unpack back; returns simulated seconds."""
    proc = env.world.procs[0]
    sim = env.sim
    if warm_cache:
        proc.engine.warm_cache(dt, 1)

    def run():
        pj = proc.engine.pack_job(dt, 1, src, options)
        yield from pj.process_all(dst, frag)
        uj = proc.engine.unpack_job(dt, 1, src, options)
        yield from uj.process_all(dst, frag)

    t0 = sim.now
    sim.run_until_complete(sim.spawn(run()))
    return sim.now - t0


def engine_times(n: int) -> dict[str, float]:
    env = make_env("sm-1gpu")
    proc = env.world.procs[0]
    gpu = env.gpu0
    ld = n + 512
    V = submatrix_type(n, ld)
    T = lower_triangular_type(n)
    srcV = proc.ctx.malloc(ld * ld * 8)
    srcT = proc.ctx.malloc(n * n * 8)
    out: dict[str, float] = {}

    # ---- bypass CPU: pack into a GPU buffer -------------------------------
    dgpu = proc.ctx.malloc(V.size)
    no_cache = EngineOptions(use_cache=False, pipeline_prep=False)
    pipe = EngineOptions(use_cache=False, pipeline_prep=True)
    cached = EngineOptions(use_cache=True)
    out["V-d2d"] = _roundtrip(env, V, srcV, no_cache, None, dgpu)
    out["T-d2d"] = _roundtrip(env, T, srcT, no_cache, None, dgpu)
    out["T-d2d-pipeline"] = _roundtrip(env, T, srcT, pipe, PIPE_FRAG, dgpu)
    out["T-d2d-cached"] = _roundtrip(env, T, srcT, cached, None, dgpu, warm_cache=True)

    # ---- through host memory ------------------------------------------------
    # d2d2h: pack to GPU staging then explicit D2H (and H2D + unpack back)
    sim = env.sim
    hbuf = proc.node.host_memory.alloc(V.size)

    def d2d2h(dt, src, options, warm):
        if warm:
            proc.engine.warm_cache(dt, 1)

        def run():
            pj = proc.engine.pack_job(dt, 1, src, options)
            yield from pj.process_all(dgpu, PIPE_FRAG)
            yield gpu.memcpy_d2h(hbuf[: dt.size], dgpu[: dt.size])
            yield gpu.memcpy_h2d(dgpu[: dt.size], hbuf[: dt.size])
            uj = proc.engine.unpack_job(dt, 1, src, options)
            yield from uj.process_all(dgpu, PIPE_FRAG)

        t0 = sim.now
        sim.run_until_complete(sim.spawn(run()))
        return sim.now - t0

    out["V-d2d2h"] = d2d2h(V, srcV, pipe, warm=False)
    out["T-d2d2h-cached"] = d2d2h(T, srcT, cached, warm=True)

    # cpy: zero-copy — the kernel streams over PCIe itself
    zbuf = proc.node.host_memory.alloc(V.size)
    map_host_buffer(zbuf, gpu)
    out["V-cpy"] = _roundtrip(env, V, srcV, pipe, PIPE_FRAG, zbuf)
    out["T-cpy-cached"] = _roundtrip(
        env, T, srcT, cached, PIPE_FRAG, zbuf, warm_cache=True
    )
    return out


@pytest.mark.figure("fig7")
def test_fig7_engine_time(benchmark, show):
    left = Series(
        "Fig 7a: pack+unpack, bypass CPU",
        "N",
        ["V-d2d", "T-d2d", "T-d2d-pipeline", "T-d2d-cached"],
    )
    right = Series(
        "Fig 7b: pack+unpack, through host",
        "N",
        ["V-d2d2h", "V-cpy", "T-d2d2h-cached", "T-cpy-cached"],
    )
    for n in SIZES:
        r = engine_times(n)
        left.add(n, **{k: r[k] for k in left.columns})
        right.add(n, **{k: r[k] for k in right.columns})
    show(left.to_table(fmt_time))
    show(right.to_table(fmt_time))

    i = len(SIZES) - 1
    t_plain = left.column("T-d2d")[i]
    t_pipe = left.column("T-d2d-pipeline")[i]
    t_cached = left.column("T-d2d-cached")[i]
    v_plain = left.column("V-d2d")[i]
    # pipelining hides most of the DEV preparation; caching removes it
    assert t_pipe < t_plain * 0.85, "pipelining should cut the T time"
    assert t_cached < t_pipe, "caching should beat pipelining"
    assert t_plain / t_cached > 1.4, "prep should be a large share of T-d2d"
    # an uncached T costs about as much as V despite half the payload
    assert 0.7 <= t_plain / v_plain <= 1.3
    # zero-copy beats explicit staging
    assert right.column("V-cpy")[i] < right.column("V-d2d2h")[i]

    benchmark(engine_times, 1024)
