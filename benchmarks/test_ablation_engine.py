"""Ablations on the GPU engine's design choices.

* CUDA_DEV unit size S in {1 KB, 2 KB, 4 KB} — "we set the size S to
  1KB, 2KB or 4KB to reduce the branch penalties and increase
  opportunities for instruction level parallelism" (Section 3.2).
  Larger S means fewer units (less per-unit overhead, less preparation)
  but coarser occupancy rounding on ragged layouts.
* Receiver local staging on/off — "by using a local GPU buffer, the
  performance is 10-15% faster than directly accessing remote GPU
  memory" (Section 5.2.1).
* The Fig 1 strawmen (whole-region staging, one memcpy per block)
  against the GPU engine's pack, on the same triangular layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.staging import per_block_d2h_pack, whole_region_pack
from repro.bench import Series, Table, fmt_time, make_env, matrix_buffers, pingpong
from repro.bench.profiles import current as current_profile
from repro.cuda.uma import map_host_buffer
from repro.datatype.convertor import pack_bytes
from repro.gpu_engine import EngineOptions
from repro.mpi.config import MpiConfig
from repro.workloads.matrices import MatrixWorkload, lower_triangular_type

N = current_profile().pick(2048, 1024)


@pytest.mark.figure("ablation-unit-size")
def test_ablation_unit_size(benchmark, show):
    """S sweep on the triangular pack (kernel + preparation)."""
    series = Series(
        f"Ablation: T pack (N={N}) vs CUDA_DEV size S",
        "S",
        ["kernel", "kernel+prep", "units"],
    )
    results = {}
    for s_kb in (1, 2, 4):
        env = make_env("sm-1gpu")
        proc = env.world.procs[0]
        sim = env.sim
        T = lower_triangular_type(N)
        src = proc.ctx.malloc(N * N * 8)
        dst = proc.ctx.malloc(T.size)
        opts = EngineOptions(unit_size=s_kb << 10, use_cache=False,
                             pipeline_prep=False)
        job = proc.engine.pack_job(T, 1, src, opts)
        n_units = job.units.count
        t0 = sim.now
        sim.run_until_complete(sim.spawn(job.process_all(dst)))
        with_prep = sim.now - t0
        # cached: kernel only
        proc.engine.warm_cache(T, 1, unit_size=s_kb << 10)
        job2 = proc.engine.pack_job(
            T, 1, src, EngineOptions(unit_size=s_kb << 10, use_cache=True)
        )
        t0 = sim.now
        sim.run_until_complete(sim.spawn(job2.process_all(dst)))
        kernel = sim.now - t0
        results[s_kb] = (kernel, with_prep, n_units)
        series.add(f"{s_kb}KiB", kernel=kernel, **{"kernel+prep": with_prep},
                   units=float(n_units))
    show(series.to_table(lambda v: fmt_time(v) if v < 1 else f"{int(v)}"))

    # smaller S => more units => more preparation work
    assert results[1][2] > results[4][2]
    assert results[1][1] > results[4][1], "1KiB units should cost more prep"

    benchmark(lambda: None)


@pytest.mark.figure("ablation-local-staging")
def test_ablation_local_staging(benchmark, show):
    """Receiver local staging vs direct remote unpack (Section 5.2.1)."""
    wl = MatrixWorkload.submatrix(N, N + 512)
    times = {}
    for staging in (True, False):
        cfg = MpiConfig(receiver_local_staging=staging)
        env = make_env("sm-2gpu", config=cfg)
        b0, b1 = matrix_buffers(env, wl)
        times[staging] = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, 2)
    t = Table(
        "Ablation: receiver local staging (V ping-pong, 2 GPUs)",
        ["variant", "time", "vs staged"],
    )
    t.add("local staging (default)", fmt_time(times[True]), "1.00x")
    t.add("direct remote unpack", fmt_time(times[False]),
          f"{times[False] / times[True]:.2f}x")
    show(t)
    # paper: staging 10-15% faster (we accept 5-40%)
    ratio = times[False] / times[True]
    assert 1.05 <= ratio <= 1.45, f"direct remote unpack at {ratio:.2f}x"

    benchmark(lambda: None)


@pytest.mark.figure("ablation-fig1")
def test_ablation_fig1_strawmen(benchmark, show):
    """The Fig 1 alternatives vs the GPU engine, packing T to host."""
    env = make_env("sm-1gpu")
    proc = env.world.procs[0]
    sim = env.sim
    T = lower_triangular_type(N)
    rng = np.random.default_rng(3)
    src = proc.ctx.malloc(N * N * 8)
    src.write(rng.random(N * N))
    host_out = proc.node.host_memory.alloc(T.size)

    results = {}

    # (a) whole-region D2H + CPU pack
    t0 = sim.now
    sim.run_until_complete(
        sim.spawn(whole_region_pack(proc, T, 1, src, host_out))
    )
    results["(a) region+CPU-pack"] = sim.now - t0
    assert np.array_equal(host_out.bytes, pack_bytes(T, 1, src.bytes))

    # (b) one cudaMemcpy D2H per block
    host_out.fill(0)
    t0 = sim.now
    sim.run_until_complete(sim.spawn(per_block_d2h_pack(proc, T, 1, src, host_out)))
    results["(b) memcpy-per-block"] = sim.now - t0
    assert np.array_equal(host_out.bytes, pack_bytes(T, 1, src.bytes))

    # (d) the paper's GPU engine with zero-copy
    host_out.fill(0)
    map_host_buffer(host_out, proc.gpu)
    proc.engine.warm_cache(T, 1)
    job = proc.engine.pack_job(T, 1, src, EngineOptions(use_cache=True))
    t0 = sim.now
    sim.run_until_complete(sim.spawn(job.process_all(host_out, 4 << 20)))
    results["(d) GPU engine (paper)"] = sim.now - t0
    assert np.array_equal(host_out.bytes, pack_bytes(T, 1, src.bytes))

    t = Table(
        f"Fig 1 alternatives: pack T (N={N}) into host memory",
        ["approach", "time", "vs GPU engine"],
    )
    ours = results["(d) GPU engine (paper)"]
    for name, v in results.items():
        t.add(name, fmt_time(v), f"{v / ours:.1f}x")
    show(t)

    assert ours < results["(a) region+CPU-pack"], "engine must beat region+CPU"
    assert ours < results["(b) memcpy-per-block"], "engine must beat per-block"
    # per-block is driver-call bound: catastrophically slower
    assert results["(b) memcpy-per-block"] / ours > 3

    benchmark(lambda: None)
