"""Figure 9: PCI-E bandwidth achieved by the ping-pong benchmark.

Two ranks on different GPUs of one node: every packed byte crosses the
PCIe switch, so PCIe is the bottleneck and the figure reports how close
each datatype gets to the contiguous transfer's bandwidth.  Paper: "we
achieved 90% and 78% of the PCI-E bandwidth for vector and indexed
types, respectively, by selecting a proper pipeline size".
"""

from __future__ import annotations

import pytest

from repro.bench import Series
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import pcie_bandwidths

PROFILE = current_profile()
SIZES = PROFILE.pick([512, 1024, 2048, 3072], [512, 1024])


@pytest.mark.figure("fig9")
def test_fig9_pcie_bandwidth(benchmark, show):
    series = Series(
        "Fig 9: PCI-E bandwidth of ping-pong (GB/s)", "N", ["V", "T", "C"]
    )
    for n in SIZES:
        series.add(n, **pcie_bandwidths(n))
    show(series.to_table(fmt=lambda v: f"{v / 1e9:.2f}"))

    i = len(SIZES) - 1
    v, t, c = (series.column(k)[i] for k in ("V", "T", "C"))
    assert t < v < c, "indexed should trail vector, both below contiguous"
    if PROFILE.is_full:
        # paper: ~90% (V) and ~78% (T) of the PCIe bandwidth; our pipeline
        # hides the indexed type's preparation a little better, so T lands
        # closer to V, but the ordering and the below-C gap both hold
        assert 0.78 <= v / c <= 0.95, f"V at {v / c:.2f} of contiguous PCIe bw"
        assert 0.60 <= t / c <= 0.92, f"T at {t / c:.2f} of contiguous PCIe bw"

    benchmark(pcie_bandwidths, 1024)
