"""Collective algorithm ladder: the staged-vs-direct alltoall crossover.

The GPU-datatype-aware alltoall can move each peer block four ways
(docs/COLLECTIVES.md); the two GPU-resident contenders are:

* **staged** — pack every remote block, batch ONE D2H, exchange through
  host memory, batch ONE H2D on the receiver.  Pays the PCIe bounce
  twice but amortizes per-message costs across all peers;
* **direct** — per-peer one-sided moves over IPC-mapped windows, no
  batching but no host bounce for intra-node peers.

Expectation (mostly-inter-node topologies): staged wins small blocks,
direct wins large ones, and the crossover sits in the 16-64 KB band the
``coll_staged_threshold`` default (32 KB) mirrors — resonant with the
paper's ~30 KB GPUDirect-profitability note.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time
from repro.bench.harness import alltoall_times
from repro.bench.profiles import current as current_profile
from repro.mpi.collectives import CollAlgorithm
from repro.mpi.config import MpiConfig

PROFILE = current_profile()
SIZES = PROFILE.pick(
    [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10],
    [4 << 10, 16 << 10, 64 << 10],
)
TOPOS = PROFILE.pick([(4, 1), (4, 2), (8, 1)], [(4, 2)])
ALGOS = [CollAlgorithm.STAGED, CollAlgorithm.DIRECT]


@pytest.mark.figure("coll_crossover")
def test_staged_vs_direct_crossover(benchmark, show):
    """Staged wins the smallest block, direct the largest, flip in between."""
    for n_nodes, gpn in TOPOS:
        series = Series(
            f"alltoall {n_nodes}x{gpn}: staged vs direct",
            "block",
            ["staged", "direct"],
        )
        for nbytes in SIZES:
            series.add(nbytes, **alltoall_times(
                nbytes, ALGOS, n_nodes=n_nodes, gpus_per_node=gpn
            ))
        show(series.to_table(fmt_time))

        staged = series.column("staged")
        direct = series.column("direct")
        assert staged[0] < direct[0], (
            f"{n_nodes}x{gpn}: staged should win the {SIZES[0]}B block"
        )
        assert direct[-1] < staged[-1], (
            f"{n_nodes}x{gpn}: direct should win the {SIZES[-1]}B block"
        )
        flips = [i for i in range(len(SIZES)) if direct[i] < staged[i]]
        crossover = SIZES[flips[0]]
        assert SIZES[0] < crossover <= 256 << 10, (
            f"{n_nodes}x{gpn}: crossover at {crossover}B out of band"
        )


def _auto_alltoall_algo(block_bytes: int) -> dict:
    """Run one 'auto' alltoall; return the per-algorithm call counters."""
    import numpy as np

    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE
    from repro.hw.node import Cluster
    from repro.mpi.collectives import alltoall
    from repro.mpi.world import MpiWorld

    size = 4
    world = MpiWorld(
        Cluster(2, 2), [(n, g) for n in range(2) for g in range(2)]
    )
    dt = contiguous(max(block_bytes // 8, 1), DOUBLE).commit()
    rng = np.random.default_rng(3)
    sendbufs, recvbufs = [], []
    for r in range(size):
        ctx = world.procs[r].ctx
        srow, rrow = [], []
        for _ in range(size):
            sb = ctx.malloc(dt.size)
            sb.bytes[:] = rng.integers(0, 255, dt.size, dtype=np.uint8)
            rb = ctx.malloc(dt.size)
            rb.fill(0)
            srow.append(sb)
            rrow.append(rb)
        sendbufs.append(srow)
        recvbufs.append(rrow)

    def program(rank):
        def run(mpi):
            yield from alltoall(
                mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1
            )
        return run

    world.run({r: program(r) for r in range(size)})
    return world.stats().coll_ops


@pytest.mark.figure("coll_crossover")
def test_auto_policy_tracks_threshold(benchmark, show):
    """'auto' routes below-threshold blocks staged, larger ones not."""
    cfg = MpiConfig()
    below = _auto_alltoall_algo(cfg.coll_staged_threshold // 2)
    above = _auto_alltoall_algo(cfg.coll_staged_threshold * 4)
    assert below.get("alltoall.staged") == 4, below
    assert "alltoall.staged" not in above, above
