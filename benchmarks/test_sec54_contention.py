"""Section 5.4: non-contiguous transfers when the GPU is shared.

The evaluation's fourth benchmark: "we analyze the impact on
non-contiguous data transfer when access to the GPU resource is limited
(the GPU is shared with another GPU intensive application)."

A co-running kernel consumes a fraction of the GPU's SMs and DRAM
bandwidth (`Gpu.contention`).  Because the communication pipeline is
PCIe-bound, moderate contention barely moves the ping-pong time — the
engine's kernels have headroom — until the leftover kernel bandwidth
drops below the wire rate, after which the pack stage becomes the
bottleneck and latency climbs steeply.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import pingpong_under_contention

PROFILE = current_profile()
LEVELS = PROFILE.pick([0.0, 0.25, 0.5, 0.75, 0.9, 0.97], [0.0, 0.5, 0.97])
N = PROFILE.pick(2048, 1024)


@pytest.mark.figure("sec5.4")
def test_sec54_contention(benchmark, show):
    series = Series(
        f"S5.4: V ping-pong (N={N}) vs co-running-app GPU share",
        "contention",
        ["time"],
    )
    times = {}
    for level in LEVELS:
        t = pingpong_under_contention(level, N)
        times[level] = t
        series.add(f"{int(level * 100)}%", time=t)
    show(series.to_table(fmt_time))

    # PCIe-bound region: 50% contention costs little
    assert times[0.5] < times[0.0] * 1.2, "should tolerate a half-busy GPU"
    # kernel-starved region: extreme contention blows the time up
    assert times[0.97] > times[0.0] * 1.5, "a ~starved GPU must hurt"
    # monotone non-decreasing (within tolerance)
    ts = [times[l] for l in LEVELS]
    for a, b in zip(ts, ts[1:]):
        assert b >= a * 0.99

    benchmark(pingpong_under_contention, 0.5, N)
