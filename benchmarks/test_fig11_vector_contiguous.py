"""Figure 11: ping-pong with different datatypes on each side.

"When using MPI datatypes, the sender and the receiver can have
different datatypes as long as the datatype signatures are identical ...
In FFT, one side uses a vector, and the other side uses a contiguous
type" (Section 5.2.2).  One rank holds an N x N sub-matrix (vector), the
other receives it densely packed (contiguous).

Paper: "taking the benefit of GPU RDMA and zero copy, our implementation
performs better than MVAPICH2 in both shared and distributed memory
environments."  The win comes from the handshake fast path: with one
side contiguous, the pack (or unpack) stage disappears entirely —
the sender packs straight into the receiver's buffer via IPC.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time, make_env, matrix_buffers, pingpong
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import vc_times
from repro.workloads.matrices import MatrixWorkload

PROFILE = current_profile()
SIZES = PROFILE.pick([512, 1024, 2048], [512, 1024])
ENVS = {"sm-2gpu": "SM", "ib": "IB"}


@pytest.mark.figure("fig11")
def test_fig11_vector_contiguous(benchmark, show):
    results = {}
    for kind, label in ENVS.items():
        series = Series(
            f"Fig 11 ({label}): vector<->contiguous ping-pong",
            "N",
            ["V<->C", "V<->C-MVAPICH"],
        )
        for n in SIZES:
            series.add(n, **vc_times(kind, n))
        show(series.to_table(fmt_time))
        results[kind] = series

    i = len(SIZES) - 1
    for kind, series in results.items():
        ours = series.column("V<->C")[i]
        theirs = series.column("V<->C-MVAPICH")[i]
        assert ours < theirs, f"{kind}: ours should win the FFT-reshape exchange"

    # the contiguous fast path should beat the both-non-contiguous case
    env = make_env("sm-2gpu")
    wl = MatrixWorkload.submatrix(SIZES[i], SIZES[i] + 512)
    b0, b1 = matrix_buffers(env, wl)
    both_v = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)
    assert results["sm-2gpu"].column("V<->C")[i] <= both_v * 1.05

    benchmark(vc_times, "sm-2gpu", 512)
