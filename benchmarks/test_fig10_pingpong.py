"""Figure 10: ping-pong with sub-matrix (V) and triangular (T) datatypes.

Three environments, ours vs the MVAPICH-style baseline:

(a) shared memory, both ranks on **one GPU** — no PCIe crossing, at
    least 2x faster than the two-GPU case;
(b) shared memory, **two GPUs** — PCIe-bound;
(c) **InfiniBand** — staged through host with zero-copy.

Paper findings: "Compared with MVAPICH2, our implementation is always
significantly faster, independent of the datatype"; MVAPICH's indexed
(T) curves leave the chart because every column is packed by its own
cudaMemcpy2D; on IB MVAPICH is competitive for V but we still win.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import pingpong_times

PROFILE = current_profile()
SIZES = PROFILE.pick([512, 1024, 2048], [512, 1024])


ENVS = {"sm-1gpu": "Fig 10a (SM intra-GPU)", "sm-2gpu": "Fig 10b (SM inter-GPU)",
        "ib": "Fig 10c (InfiniBand)"}


@pytest.mark.figure("fig10")
def test_fig10_pingpong(benchmark, show):
    tables: dict[str, Series] = {}
    for kind, title in ENVS.items():
        series = Series(
            f"{title}: ping-pong round-trip",
            "N",
            ["V", "V-MVAPICH", "T", "T-MVAPICH"],
        )
        for n in SIZES:
            series.add(n, **pingpong_times(kind, n))
        show(series.to_table(fmt_time))
        tables[kind] = series

    i = len(SIZES) - 1
    for kind, series in tables.items():
        v, vm = series.column("V")[i], series.column("V-MVAPICH")[i]
        t, tm = series.column("T")[i], series.column("T-MVAPICH")[i]
        assert v < vm, f"{kind}: ours should beat MVAPICH on V"
        assert t < tm, f"{kind}: ours should beat MVAPICH on T"
        # MVAPICH's per-column cudaMemcpy2D makes T blow up (off the chart)
        assert tm / t > 3, f"{kind}: MVAPICH T should be far slower (got {tm / t:.1f}x)"

    # intra-GPU at least ~2x faster than inter-GPU (no PCIe crossing)
    one = tables["sm-1gpu"].column("V")[i]
    two = tables["sm-2gpu"].column("V")[i]
    assert two / one >= 2, f"1GPU should be >=2x faster ({two / one:.2f}x)"

    benchmark(pingpong_times, "sm-2gpu", 512)
