"""Figure 6: GPU memory bandwidth of packing kernels.

Paper: packing a sub-matrix (vector type, ``V``) reaches ~94 % of the
``cudaMemcpy`` practical peak; the lower triangular matrix (indexed,
``T``) only ~80 % because its ragged columns under-occupy the CUDA
blocks; the stair-triangular variant (``T-stair``, stair size = CUDA
block size) recovers the vector's bandwidth.  All curves rise with
matrix size as the kernel-launch cost amortizes.
"""

from __future__ import annotations

import pytest

from repro.bench import Series
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import kernel_bandwidths

PROFILE = current_profile()
SIZES = PROFILE.pick([512, 1024, 2048, 4096], [512, 1024])


@pytest.mark.figure("fig6")
def test_fig6_kernel_bandwidth(benchmark, show):
    series = Series(
        "Fig 6: GPU memory bandwidth of packing kernels (GB/s)",
        "N",
        ["V", "T", "T-stair", "C-cudaMemcpy"],
    )
    for n in SIZES:
        series.add(n, **kernel_bandwidths(n))
    show(series.to_table(fmt=lambda v: f"{v / 1e9:.1f}"))

    big = len(SIZES) - 1
    v = series.column("V")[big]
    t = series.column("T")[big]
    stair = series.column("T-stair")[big]
    peak = series.column("C-cudaMemcpy")[big]
    # qualitative ordering holds at any size: ragged T trails, stair recovers
    assert t < stair <= peak and t < v <= peak
    # bandwidth grows with size (launch amortization)
    assert series.column("V")[0] < series.column("V")[big]
    if PROFILE.is_full:
        # paper bands need the 4096 point: V ~94% of peak, T ~80%, stair ~V
        assert 0.88 <= v / peak <= 1.0, f"V at {v / peak:.2f} of peak"
        assert 0.72 <= t / peak <= 0.88, f"T at {t / peak:.2f} of peak"
        assert stair / peak >= 0.88, f"stair at {stair / peak:.2f} of peak"

    benchmark(kernel_bandwidths, 1024)
