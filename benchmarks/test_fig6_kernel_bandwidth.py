"""Figure 6: GPU memory bandwidth of packing kernels.

Paper: packing a sub-matrix (vector type, ``V``) reaches ~94 % of the
``cudaMemcpy`` practical peak; the lower triangular matrix (indexed,
``T``) only ~80 % because its ragged columns under-occupy the CUDA
blocks; the stair-triangular variant (``T-stair``, stair size = CUDA
block size) recovers the vector's bandwidth.  All curves rise with
matrix size as the kernel-launch cost amortizes.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, make_env
from repro.gpu_engine import EngineOptions
from repro.workloads.matrices import (
    stair_triangular_type,
    submatrix_type,
    lower_triangular_type,
)

SIZES = [512, 1024, 2048, 4096]
#: stair size = threads per CUDA block, as the paper prescribes
STAIR_NB = 512


def kernel_bandwidths(n: int) -> dict[str, float]:
    """Effective pack bandwidth (payload bytes / kernel time) per layout."""
    env = make_env("sm-1gpu")
    gpu = env.gpu0
    proc = env.world.procs[0]
    sim = env.sim
    ld = n + 512

    out: dict[str, float] = {}
    cases = {
        "V": submatrix_type(n, ld),
        "T": lower_triangular_type(n),
        "T-stair": stair_triangular_type(n, STAIR_NB),
    }
    for name, dt in cases.items():
        src = proc.ctx.malloc(max(dt.extent, ld * ld * 8))
        dst = proc.ctx.malloc(dt.size)
        # measure the kernel alone: CUDA_DEVs cached (prep excluded), one
        # launch — this is what Fig 6 isolates
        proc.engine.warm_cache(dt, 1)
        job = proc.engine.pack_job(dt, 1, src, EngineOptions(use_cache=True))
        t0 = sim.now
        sim.run_until_complete(sim.spawn(job.process_all(dst)))
        out[name] = dt.size / (sim.now - t0)
        src.free()
        dst.free()

    # the reference: contiguous cudaMemcpy of the V payload size
    nbytes = n * n * 8
    a = proc.ctx.malloc(nbytes)
    b = proc.ctx.malloc(nbytes)
    t0 = sim.now
    sim.run_until_complete(gpu.memcpy_d2d(b, a))
    out["C-cudaMemcpy"] = nbytes / (sim.now - t0)
    return out


@pytest.mark.figure("fig6")
def test_fig6_kernel_bandwidth(benchmark, show):
    series = Series(
        "Fig 6: GPU memory bandwidth of packing kernels (GB/s)",
        "N",
        ["V", "T", "T-stair", "C-cudaMemcpy"],
    )
    for n in SIZES:
        series.add(n, **kernel_bandwidths(n))
    show(series.to_table(fmt=lambda v: f"{v / 1e9:.1f}"))

    big = len(SIZES) - 1
    v = series.column("V")[big]
    t = series.column("T")[big]
    stair = series.column("T-stair")[big]
    peak = series.column("C-cudaMemcpy")[big]
    # paper: V ~94% of peak, T ~80%, stair recovers to ~V
    assert 0.88 <= v / peak <= 1.0, f"V at {v / peak:.2f} of peak"
    assert 0.72 <= t / peak <= 0.88, f"T at {t / peak:.2f} of peak"
    assert stair / peak >= 0.88, f"stair at {stair / peak:.2f} of peak"
    # bandwidth grows with size (launch amortization)
    assert series.column("V")[0] < series.column("V")[big]

    benchmark(kernel_bandwidths, 1024)
