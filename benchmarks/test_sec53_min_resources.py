"""Section 5.3: minimal GPU resources for optimal communication.

The evaluation's third benchmark: "we figure out the minimal GPU
resources required for GPU packing/unpacking kernels to achieve optimal
overall performance when communication is engaged."

We grant the pack/unpack kernels an increasing number of CUDA blocks and
measure the two-GPU ping-pong.  Because the wire (PCIe) is the
bottleneck, performance flattens as soon as the kernel bandwidth
(~ grid_blocks * warps_per_block * per-warp rate) crosses PCIe bandwidth
— i.e. a small fraction of the GPU suffices, leaving the rest for the
application.
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time, make_env
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import pingpong_with_grid, saturation_grid

PROFILE = current_profile()
GRIDS = [1, 2, 4, 8, 16, 32, 64, 120]
N = PROFILE.pick(2048, 1024)


@pytest.mark.figure("sec5.3")
def test_sec53_min_resources(benchmark, show):
    series = Series(
        f"S5.3: V ping-pong (N={N}) vs CUDA blocks granted to the engine",
        "blocks",
        ["time", "kernel_bw_GBs"],
    )
    times = {}
    env = make_env("sm-2gpu")
    for g in GRIDS:
        t = pingpong_with_grid(g, N)
        times[g] = t
        series.add(g, time=t, kernel_bw_GBs=env.gpu0.kernel_bandwidth(g))
    show(series.to_table(lambda v: fmt_time(v) if v < 1 else f"{v / 1e9:.1f}"))

    sat = saturation_grid(GRIDS)
    print(f"\nmodel-predicted saturation grid: {sat} blocks")
    # starved kernels dominate; granting more blocks helps a lot...
    assert times[1] > times[GRIDS[-1]] * 1.5
    # ...but beyond saturation extra blocks buy (almost) nothing (the
    # smaller quick matrix leaves fixed overheads a larger share, so the
    # flattening tolerance is looser there)
    after = [times[g] for g in GRIDS if g >= sat]
    flat = PROFILE.pick(1.15, 1.30)
    assert max(after) < min(after) * flat, "curve should flatten past saturation"
    # saturation needs only a small fraction of the GPU's 120-block grid
    assert sat <= 16

    benchmark(pingpong_with_grid, GRIDS[-1], N)
