"""Shared benchmark fixtures.

Benchmarks report **simulated time** (deterministic, hardware-model
driven); the pytest-benchmark fixture wraps one representative run so the
harness's own wall-clock cost is tracked too.  Run with:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): paper figure reproduced")


@pytest.fixture(scope="session")
def show():
    """Print a reporting object with spacing (benchmarks print tables)."""

    def _show(obj):
        print()
        if hasattr(obj, "show"):
            obj.show()
        else:
            print(obj)

    return _show
