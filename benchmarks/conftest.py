"""Shared benchmark fixtures.

Benchmarks report **simulated time** (deterministic, hardware-model
driven); the pytest-benchmark fixture wraps one representative run so the
harness's own wall-clock cost is tracked too.  Run with:

    pytest benchmarks/ --benchmark-only

Sweep sizes come from the active profile (``REPRO_BENCH_PROFILE``):
``full`` (default) reproduces the paper's sizes, ``quick`` is the CI
cut.  When pytest-benchmark isn't installed (the CI matrix installs
only numpy/pytest/hypothesis) a pass-through ``benchmark`` fixture
keeps the suites runnable — the wrapped call still runs once.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): paper figure reproduced")


try:
    import pytest_benchmark  # noqa: F401
except ImportError:

    @pytest.fixture
    def benchmark():
        """Pass-through stand-in when pytest-benchmark is absent."""

        def _run(fn, *args, **kwargs):
            return fn(*args, **kwargs)

        return _run


@pytest.fixture(scope="session")
def show():
    """Print a reporting object with spacing (benchmarks print tables)."""

    def _show(obj):
        print()
        if hasattr(obj, "show"):
            obj.show()
        else:
            print(obj)

    return _show
