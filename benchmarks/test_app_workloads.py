"""Application-motif benchmarks: the workloads the paper's intro motivates.

Section 3 motivates the engine with two application patterns: the SHOC
2-D stencil (vector halos) and LAMMPS particle exchange (indexed record
sets).  These benches time one application communication step — ours vs
the MVAPICH-style baseline — rather than a synthetic ping-pong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mvapich import MvapichLikeTransfer
from repro.bench import Table, fmt_time, make_env
from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.workloads.particles import (
    PARTICLE_FIELDS,
    particle_index_type,
    random_particle_indices,
)
from repro.bench.profiles import current as current_profile
from repro.workloads.stencil import stencil_halo_types

PROFILE = current_profile()
GRID = PROFILE.pick(2048, 1024)  # tile edge (doubles)
HALO = 2
N_LOCAL, N_SEND = PROFILE.pick((100_000, 8_000), (50_000, 4_000))


def stencil_step(env, use_ours: bool) -> float:
    """One east-west halo exchange between two GPU tiles."""
    halo = stencil_halo_types(GRID, GRID, HALO)
    offs = halo.offsets()
    p0, p1 = env.world.procs
    tiles = [p.ctx.malloc(GRID * GRID * 8) for p in (p0, p1)]
    tiles[0].write(np.random.default_rng(0).random(GRID * GRID))
    ghost = p1.ctx.malloc(halo.east.size)
    ghost_dt = contiguous(halo.east.size // 8, DOUBLE).commit()
    sim = env.sim

    if use_ours:
        def s(mpi):
            yield mpi.send(tiles[0][offs["east"]:], halo.east, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(ghost, ghost_dt, 1, source=0, tag=1)

        env.world.run([s, r])
        elapsed = env.world.run([s, r])
    else:
        xfer = MvapichLikeTransfer(p0, p1)

        def step():
            yield from xfer.transfer(
                tiles[0][offs["east"]:], halo.east, 1, ghost, ghost_dt, 1
            )

        sim.run_until_complete(sim.spawn(step()))
        t0 = sim.now
        sim.run_until_complete(sim.spawn(step()))
        elapsed = sim.now - t0
    want = pack_bytes(halo.east, 1, tiles[0].bytes[offs["east"]:])
    assert np.array_equal(ghost.bytes, want)
    return elapsed


def particles_step(env, use_ours: bool) -> float:
    """One boundary-particle exchange (indexed records) between two GPUs."""
    p0, p1 = env.world.procs
    idx = random_particle_indices(N_LOCAL, N_SEND, seed=3)
    send_dt = particle_index_type(idx)
    recv_dt = contiguous(N_SEND * PARTICLE_FIELDS, DOUBLE).commit()
    src = p0.ctx.malloc(N_LOCAL * PARTICLE_FIELDS * 8)
    src.write(np.random.default_rng(1).random(N_LOCAL * PARTICLE_FIELDS))
    dst = p1.ctx.malloc(recv_dt.size)
    sim = env.sim

    if use_ours:
        def s(mpi):
            yield mpi.send(src, send_dt, 1, dest=1, tag=2)

        def r(mpi):
            yield mpi.recv(dst, recv_dt, 1, source=0, tag=2)

        env.world.run([s, r])
        elapsed = env.world.run([s, r])
    else:
        xfer = MvapichLikeTransfer(p0, p1)

        def step():
            yield from xfer.transfer(src, send_dt, 1, dst, recv_dt, 1)

        sim.run_until_complete(sim.spawn(step()))
        t0 = sim.now
        sim.run_until_complete(sim.spawn(step()))
        elapsed = sim.now - t0
    assert np.array_equal(dst.bytes, pack_bytes(send_dt, 1, src.bytes))
    return elapsed


@pytest.mark.figure("app-motifs")
def test_application_motifs(benchmark, show):
    rows = []
    for name, step in (("SHOC stencil halo", stencil_step),
                       ("LAMMPS particle exchange", particles_step)):
        ours = step(make_env("sm-2gpu"), use_ours=True)
        theirs = step(make_env("sm-2gpu"), use_ours=False)
        rows.append((name, ours, theirs))
    t = Table(
        "Application motifs: one communication step (SM, two GPUs)",
        ["motif", "GPU engine", "MVAPICH-style", "speedup"],
    )
    for name, ours, theirs in rows:
        t.add(name, fmt_time(ours), fmt_time(theirs), f"{theirs / ours:.1f}x")
    show(t)

    for name, ours, theirs in rows:
        assert ours < theirs, f"{name}: engine should win"
    # the indexed motif is where vectorization collapses hardest
    assert rows[1][2] / rows[1][1] > 3

    benchmark(lambda: stencil_step(make_env("sm-2gpu"), True))
