"""Ablation: pipeline fragment size and depth (Fig 9 companion).

"if a pipeline is installed between the 2 processes, the cost of the
operation can be decreased, reaching the invariant (which is the cost of
the data transfer) plus the cost of the most expensive operation (pack
or unpack) on a single fragment, which might represent a reduction by
nearly a factor of 2 if the pipeline size is correctly tuned"
(Section 4.1).

Sweeps fragment size (too small -> per-fragment overheads dominate; too
large -> poor overlap) and ring depth (1 = no overlap at all).
"""

from __future__ import annotations

import pytest

from repro.bench import Series, fmt_time
from repro.bench.profiles import current as current_profile
from repro.bench.scenarios import pipeline_pingpong

PROFILE = current_profile()
N = PROFILE.pick(2048, 1024)
FRAGS = [64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20]
DEPTHS = PROFILE.pick([1, 2, 4, 8], [1, 4])


def pp(frag_bytes: int, depth: int, env_kind: str = "sm-2gpu") -> float:
    return pipeline_pingpong(frag_bytes, depth, env_kind, n=N)


@pytest.mark.figure("ablation-pipeline")
def test_ablation_pipeline(benchmark, show):
    by_frag = Series(
        f"Ablation: V ping-pong (N={N}) vs fragment size (depth=4)",
        "frag",
        ["time"],
    )
    times_frag = {}
    for f in FRAGS:
        t = pp(f, 4)
        times_frag[f] = t
        by_frag.add(f"{f >> 10}KiB", time=t)
    show(by_frag.to_table(fmt_time))

    by_depth = Series(
        f"Ablation: V ping-pong (N={N}) vs ring depth (frag=1MiB)",
        "depth",
        ["time"],
    )
    times_depth = {}
    for d in DEPTHS:
        t = pp(1 << 20, d)
        times_depth[d] = t
        by_depth.add(d, time=t)
    show(by_depth.to_table(fmt_time))

    # The paper's invariant — pipelining cuts the time from
    # pack + wire + unpack toward wire + max(pack, unpack)-per-fragment,
    # "a reduction by nearly a factor of 2 if the pipeline size is
    # correctly tuned" — is largest when the kernels run at about the
    # wire rate.  A heavily shared GPU (Section 5.4) is exactly that
    # regime, so the factor-2 claim is demonstrated under contention.
    def contended(frag_bytes: int) -> float:
        return pipeline_pingpong(frag_bytes, 4, n=N, contention=0.93)

    slow_gpu = Series(
        f"Ablation: V ping-pong (N={N}), 93%-contended GPUs",
        "frag",
        ["time"],
    )
    t_whole = contended(64 << 20)
    t_piped = contended(2 << 20)
    slow_gpu.add("64MiB (no pipeline)", time=t_whole)
    slow_gpu.add("2MiB", time=t_piped)
    show(slow_gpu.to_table(fmt_time))

    # a sweet spot exists: the best mid fragment beats both extremes
    best_mid = min(times_frag[256 << 10], times_frag[1 << 20], times_frag[4 << 20])
    assert best_mid < times_frag[64 << 10], "tiny fragments pay overheads"
    # a single whole-message fragment loses the overlap
    assert best_mid < times_frag[64 << 20], "no-pipeline should be slower"
    assert t_piped < t_whole * 0.65, (
        f"overlap should approach 2x when pack ~ wire (got {t_whole / t_piped:.2f}x)"
    )
    # depth 1 serializes pack and unpack; deeper rings overlap them
    assert times_depth[4] < times_depth[1] * 0.9

    benchmark(pp, 1 << 20, 4)
