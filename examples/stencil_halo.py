#!/usr/bin/env python
"""SHOC-style 2-D stencil halo exchange on four GPUs (Section 3's example).

A 2x2 process grid, each rank owning a GPU-resident tile.  As in the
paper's motivation: "two of the four boundaries are contiguous, and the
other two are non-contiguous, which can be defined by a vector type".
North/south halos are contiguous row bands; east/west halos are vector
column bands.  Every iteration each rank exchanges halos with its grid
neighbours and we verify the received ghost cells bit-for-bit.

Run:  python examples/stencil_halo.py
"""

from __future__ import annotations

import numpy as np

from repro.datatype.convertor import pack_bytes
from repro.hw import Cluster
from repro.mpi import MpiWorld
from repro.workloads import stencil_halo_types

ROWS, COLS, HALO = 512, 512, 2
ITERS = 3


def main() -> None:
    cluster = Cluster(n_nodes=1, gpus_per_node=4)
    world = MpiWorld(cluster, placements=[(0, g) for g in range(4)])
    halo = stencil_halo_types(ROWS, COLS, HALO)
    offs = halo.offsets()
    item = 8

    # 2x2 grid: rank r at (r // 2, r % 2); neighbours with wraparound
    def neighbours(r):
        row, col = divmod(r, 2)
        return {
            "north": ((row - 1) % 2) * 2 + col,
            "south": ((row + 1) % 2) * 2 + col,
            "west": row * 2 + (col - 1) % 2,
            "east": row * 2 + (col + 1) % 2,
        }

    tiles = []
    ghosts = []  # received halo payloads, per rank per side
    rng = np.random.default_rng(11)
    for r in range(4):
        tile = world.procs[r].ctx.malloc(ROWS * COLS * item, label=f"tile{r}")
        tile.write(rng.random(ROWS * COLS))
        tiles.append(tile)
        ghosts.append(
            {s: world.procs[r].ctx.malloc(halo.north.size if s in ("north", "south")
                                          else halo.west.size)
             for s in ("north", "south", "west", "east")}
        )

    sides = {
        "north": halo.north, "south": halo.south,
        "west": halo.west, "east": halo.east,
    }
    # a ghost strip is contiguous once received
    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE
    ghost_dt = {
        s: contiguous(sides[s].size // 8, DOUBLE).commit() for s in sides
    }

    def program(rank):
        def run(mpi):
            nbr = neighbours(rank)
            for it in range(ITERS):
                reqs = []
                for s, dt in sides.items():
                    tag = it * 8 + list(sides).index(s)
                    reqs.append(
                        mpi.isend(tiles[rank][offs[s]:], dt, 1, dest=nbr[s], tag=tag)
                    )
                # receive the opposite side's boundary from each neighbour
                opposite = {"north": "south", "south": "north",
                            "west": "east", "east": "west"}
                for s in sides:
                    tag = it * 8 + list(sides).index(opposite[s])
                    reqs.append(
                        mpi.irecv(ghosts[rank][s], ghost_dt[s], 1,
                                  source=nbr[s], tag=tag)
                    )
                yield mpi.wait_all(*reqs)
        return run

    elapsed = world.run({r: program(r) for r in range(4)})

    # verify: my north ghost equals my north-neighbour's south boundary
    for r in range(4):
        nbr = neighbours(r)
        for s, opp in (("north", "south"), ("south", "north"),
                       ("west", "east"), ("east", "west")):
            want = pack_bytes(sides[opp], 1, tiles[nbr[s]].bytes[offs[opp]:])
            got = ghosts[r][s].bytes[: len(want)]
            assert np.array_equal(got, want), f"rank {r} side {s} ghost wrong"

    per_iter = elapsed / ITERS
    halo_bytes = 2 * (halo.north.size + halo.west.size)
    print(f"grid 2x2, tile {ROWS}x{COLS} doubles, halo width {HALO}")
    print(f"halo exchange: {per_iter * 1e6:.1f} us/iteration "
          f"({halo_bytes / 2**10:.0f} KiB sent per rank per iteration)")
    print("OK: all ghost cells verified for", ITERS, "iterations")


if __name__ == "__main__":
    main()
