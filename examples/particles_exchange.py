#!/usr/bin/env python
"""LAMMPS-style particle exchange with an indexed datatype (Section 3).

"Each process keeps an array of indices of local particles that need to
be communicated; such an access pattern can be captured by an indexed
type."  Two GPU ranks each own a particle array; every step they select a
random boundary subset and exchange those records directly from GPU
memory — no manual packing in user code.

The same exchange is also run over InfiniBand (two nodes) to show the
copy-in/copy-out protocol handling the identical application code.

Run:  python examples/particles_exchange.py
"""

from __future__ import annotations

import numpy as np

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.hw import Cluster
from repro.mpi import MpiWorld
from repro.workloads import particle_index_type, random_particle_indices
from repro.workloads.particles import PARTICLE_FIELDS

N_LOCAL = 20_000
N_SEND = 1_500


def run_exchange(kind: str) -> float:
    if kind == "intra-node (CUDA IPC)":
        cluster = Cluster(1, 2)
        placements = [(0, 0), (0, 1)]
    else:
        cluster = Cluster(2, 1)
        placements = [(0, 0), (1, 0)]
    world = MpiWorld(cluster, placements)

    rng = np.random.default_rng(5)
    arrays = []
    inboxes = []
    send_types = []
    for r in range(2):
        buf = world.procs[r].ctx.malloc(N_LOCAL * PARTICLE_FIELDS * 8)
        buf.write(rng.random(N_LOCAL * PARTICLE_FIELDS))
        arrays.append(buf)
        inboxes.append(
            world.procs[r].ctx.malloc(N_SEND * PARTICLE_FIELDS * 8)
        )
        idx = random_particle_indices(N_LOCAL, N_SEND, seed=100 + r)
        send_types.append(particle_index_type(idx))
    recv_dt = contiguous(N_SEND * PARTICLE_FIELDS, DOUBLE).commit()

    def program(rank):
        other = 1 - rank

        def run(mpi):
            reqs = [
                mpi.isend(arrays[rank], send_types[rank], 1, dest=other, tag=3),
                mpi.irecv(inboxes[rank], recv_dt, 1, source=other, tag=3),
            ]
            yield mpi.wait_all(*reqs)

        return run

    world.run({0: program(0), 1: program(1)})  # warm-up
    elapsed = world.run({0: program(0), 1: program(1)})

    for r in range(2):
        want = pack_bytes(send_types[1 - r], 1, arrays[1 - r].bytes)
        assert np.array_equal(inboxes[r].bytes, want), "particle data corrupted"
    return elapsed


def main() -> None:
    nbytes = N_SEND * PARTICLE_FIELDS * 8
    print(
        f"exchanging {N_SEND} of {N_LOCAL} particle records "
        f"({nbytes / 2**10:.0f} KiB each way, indexed datatype)"
    )
    for kind in ("intra-node (CUDA IPC)", "inter-node (InfiniBand)"):
        t = run_exchange(kind)
        print(f"{kind:26s}: {t * 1e6:8.1f} us per exchange step")
    print("OK: particle records verified on both transports")


if __name__ == "__main__":
    main()
