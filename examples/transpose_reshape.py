#!/usr/bin/env python
"""On-the-fly matrix transpose through datatypes (Sections 5.2.2/5.2.3).

MPI only requires the two sides' type *signatures* to match, so the
sender can ship a matrix contiguously while the receiver's datatype lays
it out transposed — the reshape happens inside the datatype engine, as
in FFT data redistribution.  The receive type is the paper's stress
test: N^2 single-element blocks.

The same exchange is timed against the MVAPICH-style baseline, which
needs one cudaMemcpy2D per output column.

Run:  python examples/transpose_reshape.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import MvapichLikeTransfer
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.hw import Cluster
from repro.mpi import MpiWorld
from repro.workloads import transpose_type

N = 768


def main() -> None:
    cluster = Cluster(1, 2)
    world = MpiWorld(cluster, placements=[(0, 0), (0, 1)])

    C = contiguous(N * N, DOUBLE).commit()
    TR = transpose_type(N)
    print(f"{N}x{N} doubles: sender contiguous, receiver = {TR.spans.count} "
          f"single-element blocks")

    a = world.procs[0].ctx.malloc(N * N * 8)
    a.write(np.random.default_rng(2).random(N * N))
    b = world.procs[1].ctx.malloc(N * N * 8)

    def rank0(mpi):
        yield mpi.send(a, C, 1, dest=1, tag=0)

    def rank1(mpi):
        yield mpi.recv(b, TR, 1, source=0, tag=0)

    world.run([rank0, rank1])
    ours = world.run([rank0, rank1])

    A = a.view("f8").reshape(N, N)
    B = b.view("f8").reshape(N, N)
    assert np.array_equal(B, A.T), "matrix was not transposed"

    # the comparator: vectorization + one cudaMemcpy2D per column
    xfer = MvapichLikeTransfer(world.procs[0], world.procs[1])
    sim = cluster.sim
    t0 = sim.now
    sim.run_until_complete(sim.spawn(xfer.transfer(a, C, 1, b, TR, 1)))
    theirs = sim.now - t0
    assert np.array_equal(b.view("f8").reshape(N, N), A.T)

    print(f"GPU datatype engine : {ours * 1e3:7.2f} ms")
    print(f"MVAPICH-style       : {theirs * 1e3:7.2f} ms "
          f"({theirs / ours:.1f}x slower)")
    print("OK: received matrix equals the transpose")


if __name__ == "__main__":
    main()
