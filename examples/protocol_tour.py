#!/usr/bin/env python
"""A tour of the protocol/engine knobs the paper evaluates.

Runs the same triangular-matrix ping-pong under every interesting
configuration and prints the comparison: CUDA IPC RDMA vs copy-in/out,
zero-copy vs explicit staging, receiver local staging, CUDA_DEV cache,
pipeline fragment size — plus the Fig 1 strawmen for scale.

Run:  python examples/protocol_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, fmt_time, make_env, matrix_buffers, pingpong
from repro.gpu_engine import EngineOptions
from repro.mpi import MpiConfig
from repro.workloads.matrices import MatrixWorkload

N = 1536


def measure(config: MpiConfig) -> float:
    env = make_env("sm-2gpu", config=config)
    wl = MatrixWorkload.triangular(N)
    b0, b1 = matrix_buffers(env, wl)
    return pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)


def measure_ib(config: MpiConfig) -> float:
    env = make_env("ib", config=config)
    wl = MatrixWorkload.triangular(N)
    b0, b1 = matrix_buffers(env, wl)
    return pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)


def main() -> None:
    base = MpiConfig()
    rows = [
        ("RDMA pipeline (defaults)", measure(base)),
        ("  no CUDA IPC (copy-in/out)", measure(base.but(use_cuda_ipc=False))),
        ("  no receiver local staging", measure(base.but(receiver_local_staging=False))),
        ("  no CUDA_DEV cache", measure(
            base.but(engine=EngineOptions(use_cache=False)))),
        ("  no prep pipeline, no cache", measure(
            base.but(engine=EngineOptions(use_cache=False, pipeline_prep=False)))),
        ("  tiny fragments (128 KiB)", measure(base.but(frag_bytes=128 << 10))),
        ("  huge fragment (no overlap)", measure(base.but(frag_bytes=1 << 30))),
    ]
    ib_rows = [
        ("IB, zero-copy (default)", measure_ib(base)),
        ("  explicit D2H/H2D staging", measure_ib(base.but(zero_copy=False))),
    ]

    t = Table(
        f"Triangular matrix (N={N}) ping-pong: configuration tour",
        ["configuration", "round-trip", "vs default"],
    )
    ref = rows[0][1]
    for name, v in rows:
        t.add(name, fmt_time(v), f"{v / ref:.2f}x")
    ref_ib = ib_rows[0][1]
    for name, v in ib_rows:
        t.add(name, fmt_time(v), f"{v / ref_ib:.2f}x (IB)")
    t.show()


if __name__ == "__main__":
    main()
