#!/usr/bin/env python
"""Quickstart: send a non-contiguous GPU sub-matrix between two ranks.

Builds a one-node, two-GPU simulated cluster, describes a 1024x1024
column-major sub-matrix with an MPI vector datatype, and moves it between
two GPU-resident buffers with the paper's pipelined CUDA-IPC RDMA
protocol.  The transfer is verified bit-for-bit and the simulated cost is
broken down against the raw wire time.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.datatype.convertor import pack_bytes
from repro.hw import Cluster
from repro.mpi import MpiWorld
from repro.workloads import submatrix_type


def main() -> None:
    n, ld = 1024, 2048

    # --- hardware + MPI world ------------------------------------------
    cluster = Cluster(n_nodes=1, gpus_per_node=2)
    world = MpiWorld(cluster, placements=[(0, 0), (0, 1)])

    # --- datatype: every column is contiguous, columns are ld apart -----
    V = submatrix_type(n, ld)
    print(f"datatype: vector, {n} columns x {n} doubles, payload "
          f"{V.size / 2**20:.1f} MiB inside a {ld}x{ld} matrix")

    # --- GPU buffers -----------------------------------------------------
    src = world.procs[0].ctx.malloc(ld * ld * 8, label="A")
    dst = world.procs[1].ctx.malloc(ld * ld * 8, label="B")
    src.write(np.random.default_rng(0).random(ld * ld))

    # --- rank programs --------------------------------------------------
    def rank0(mpi):
        yield mpi.send(src, V, 1, dest=1, tag=0)

    def rank1(mpi):
        yield mpi.recv(dst, V, 1, source=0, tag=0)

    first = world.run([rank0, rank1])
    steady = world.run([rank0, rank1])  # registrations/caches now warm

    # --- verify ------------------------------------------------------------
    assert np.array_equal(
        pack_bytes(V, 1, dst.bytes), pack_bytes(V, 1, src.bytes)
    ), "transfer corrupted the sub-matrix"

    wire = V.size / cluster.params.pcie_p2p.bandwidth
    print(f"first transfer : {first * 1e6:9.1f} us  (pays IPC registration)")
    print(f"steady transfer: {steady * 1e6:9.1f} us")
    print(f"raw wire time  : {wire * 1e6:9.1f} us  "
          f"({V.size / steady / 1e9:.2f} GB/s achieved, "
          f"{V.size / steady / cluster.params.pcie_p2p.bandwidth:.0%} of PCIe)")
    print("OK: sub-matrix delivered bit-for-bit")


if __name__ == "__main__":
    main()
