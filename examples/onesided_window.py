#!/usr/bin/env python
"""One-sided GPU data movement with MPI-style windows (RMA extension).

The paper notes CUDA IPC "provides a one sided copy mechanism similar to
RDMA" and that committed datatypes work with one-sided functions.  Here
rank 0 *puts* the lower-triangular part of its GPU matrix straight into
rank 1's window — rank 1 issues no receive, it only fences — and then
*gets* rank 1's boundary column back.  An energy report compares the
epoch's dynamic cost against the CPU-packed equivalent.

Run:  python examples/onesided_window.py
"""

from __future__ import annotations

import numpy as np

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import vector
from repro.datatype.primitives import DOUBLE
from repro.hw import Cluster
from repro.hw.energy import energy_report
from repro.mpi import MpiWorld, RmaWindow
from repro.workloads import lower_triangular_type

N = 512


def main() -> None:
    cluster = Cluster(1, 2, trace=True)
    world = MpiWorld(cluster, placements=[(0, 0), (0, 1)])

    T = lower_triangular_type(N)
    col = vector(N, 1, N, DOUBLE).commit()  # one matrix row, strided

    matrices = [world.procs[r].ctx.malloc(N * N * 8) for r in range(2)]
    rng = np.random.default_rng(4)
    for m in matrices:
        m.write(rng.random(N * N))
    win = RmaWindow(world, matrices)
    fetched = world.procs[0].ctx.malloc(N * N * 8)
    fetched.fill(0)

    def rank0(mpi):
        yield from win.fence(mpi)
        win.put(mpi, matrices[0], T, 1, target=1)  # triangle -> rank 1
        win.get(mpi, fetched, col, 1, target=1, target_dt=col)
        yield from win.fence(mpi)

    def rank1(mpi):
        # purely passive: expose the window, fence the epoch
        yield from win.fence(mpi)
        yield from win.fence(mpi)

    before = pack_bytes(col, 1, matrices[1].bytes).copy()
    elapsed = world.run([rank0, rank1])

    # verify the put landed and the get fetched pre-put remote data or
    # post-put (both ops target rank 1's window; ordering within an epoch
    # is unspecified in MPI, so check against the window's final content)
    assert np.array_equal(
        pack_bytes(T, 1, matrices[1].bytes), pack_bytes(T, 1, matrices[0].bytes)
    ), "put did not deliver the triangle"
    got = pack_bytes(col, 1, fetched.bytes)
    after = pack_bytes(col, 1, matrices[1].bytes)
    assert np.array_equal(got, after) or np.array_equal(got, before), (
        "get fetched neither epoch boundary state"
    )

    rep = energy_report(cluster.tracer)
    print(f"epoch: put {T.size / 2**20:.1f} MiB triangle + get one strided "
          f"row, {elapsed * 1e6:.0f} us simulated")
    print(rep.render())
    print("OK: one-sided epoch verified")


if __name__ == "__main__":
    main()
